#!/usr/bin/env python3
"""Paper Figure 1: a flexible circular plate fastened in the middle.

A circular plate (cut from a rectangular fiber array by an active-disk
mask) is tethered in its central region by stiff springs and exposed to
a uniform oncoming flow.  The free rim bends downstream while the
fastened centre stays put — the flapping-plate configuration of the
paper's opening figure.

Run:  python examples/circular_plate.py [--steps N]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.api import BoundaryConfig, Simulation, SimulationConfig, StructureConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=150)
    args = parser.parse_args()

    config = SimulationConfig(
        fluid_shape=(48, 28, 28),
        tau=0.7,
        structure=StructureConfig(
            kind="circular_plate",
            num_fibers=15,
            nodes_per_fiber=15,
            stretch_coefficient=4e-2,
            bend_coefficient=4e-4,
            tether_coefficient=2e-1,
            normal_axis=0,
        ),
        boundaries=(
            BoundaryConfig("bounce_back", "x", "low", wall_velocity=(0.04, 0.0, 0.0)),
            BoundaryConfig("outflow", "x", "high"),
        ),
        solver="sequential",
    )
    with Simulation(config) as sim:
        sheet = sim.structure.sheets[0]
        print("flexible circular plate fastened in the middle (paper Figure 1)")
        print(
            f"plate: {sheet.num_active_nodes} active nodes, "
            f"{int(sheet.tethered.sum())} tethered (fastened) nodes"
        )
        print(f"{'step':>6} {'center x-drift':>14} {'rim x-drift':>12} {'cup depth':>10}")
        for _ in range(5):
            sim.run(args.steps // 5)
            disp = sheet.positions[..., 0] - sheet.anchors[..., 0]
            center_drift = float(np.abs(disp[sheet.tethered]).mean())
            rim_mask = sheet.active & ~sheet.tethered
            rim_drift = float(disp[rim_mask].mean())
            cup = float(disp[rim_mask].max() - disp[sheet.tethered].mean())
            print(
                f"{sim.time_step:>6} {center_drift:>14.4f} {rim_drift:>12.4f} {cup:>10.4f}"
            )
        disp = sheet.positions[..., 0] - sheet.anchors[..., 0]
        rim_mask = sheet.active & ~sheet.tethered
        assert float(np.abs(disp[sheet.tethered]).mean()) < float(
            np.abs(disp[rim_mask]).mean()
        ), "the fastened centre should move less than the free rim"
        print("done: the free rim bows downstream while the fastened centre holds")


if __name__ == "__main__":
    main()
