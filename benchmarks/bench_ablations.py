"""Benchmarks: ablation studies of the cube-based design choices.

DESIGN.md's per-experiment index lists the design knobs of Section V;
each sweep here measures their effect with the real implementation on a
reduced input: cube size (working set vs bookkeeping), distribution
function (balance vs locality), owner locks (overhead; numerics
unchanged), and the delta kernel's support (influential-domain size vs
transfer cost).
"""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    cube_size_sweep,
    delta_kernel_sweep,
    distribution_sweep,
    lock_overhead,
    render_results,
)
from repro.io.csvout import write_csv


def _persist(results_dir, name, results):
    extra_keys = sorted({k for r in results for k in r.extra})
    write_csv(
        results_dir / f"{name}.csv",
        ["configuration", "seconds"] + extra_keys,
        [[r.label, round(r.seconds, 4)] + [r.extra.get(k, 0) for k in extra_keys] for r in results],
    )


def test_ablation_cube_size(benchmark, emit, results_dir):
    results = benchmark.pedantic(
        cube_size_sweep, kwargs={"steps": 2}, rounds=1, iterations=1
    )
    emit("ablation_cube_size", render_results("Ablation: cube size k", results))
    _persist(results_dir, "ablation_cube_size", results)
    # the per-cube working set grows as k^3
    ws = {r.label: r.extra["cube_working_set_kb"] for r in results}
    assert ws["k=8"] == pytest.approx(64 * ws["k=2"], rel=1e-6)


def test_ablation_distribution_method(benchmark, emit, results_dir):
    results = benchmark.pedantic(
        distribution_sweep, kwargs={"steps": 2}, rounds=1, iterations=1
    )
    emit(
        "ablation_distribution",
        render_results("Ablation: cube2thread distribution method", results),
    )
    _persist(results_dir, "ablation_distribution", results)
    assert {r.label for r in results} == {"block", "cyclic", "block_cyclic"}


def test_ablation_lock_overhead(benchmark, emit, results_dir):
    results = benchmark.pedantic(
        lock_overhead, kwargs={"steps": 2}, rounds=1, iterations=1
    )
    emit("ablation_locks", render_results("Ablation: owner locks on/off", results))
    _persist(results_dir, "ablation_locks", results)
    on = next(r for r in results if r.label == "locks on")
    off = next(r for r in results if r.label == "locks off")
    assert on.extra["acquisitions"] > 0
    assert off.extra["acquisitions"] == 0


def test_ablation_delta_kernel(benchmark, emit, results_dir):
    results = benchmark.pedantic(
        delta_kernel_sweep, kwargs={"steps": 2}, rounds=1, iterations=1
    )
    emit(
        "ablation_delta",
        render_results("Ablation: delta kernel support (influential domain)", results),
    )
    _persist(results_dir, "ablation_delta", results)
    domains = {r.label: r.extra["influential_nodes"] for r in results}
    assert domains["cosine (support 4)"] == 64.0
