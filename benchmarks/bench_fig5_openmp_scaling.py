"""Benchmark: paper Figure 5 — OpenMP strong scaling on 32 cores.

The speedup curve comes from the machine model (calibrated against the
paper's 75%/56%/38% efficiency anchors; see DESIGN.md for the hardware
substitution).  The timed part runs the *real* OpenMP-style solver at
several team sizes on a reduced grid, verifying that the parallel
program itself executes correctly at every width — wall-clock speedup
on this container is not meaningful (single physical core + GIL), which
is exactly why the model layer exists.
"""

from __future__ import annotations

import pytest

from repro.api import Simulation
from repro.experiments.fig5 import PAPER_FIG5_EFFICIENCY, render_fig5, run_fig5
from repro.experiments.workloads import scaled_profiling_config
from repro.io.csvout import write_csv


def test_fig5_reproduction(benchmark, emit, results_dir):
    rows = run_fig5()
    emit("fig5_openmp_scaling", render_fig5(rows))
    write_csv(
        results_dir / "fig5_openmp_scaling.csv",
        ["cores", "ideal_speedup", "model_speedup", "model_efficiency", "paper_efficiency"],
        [
            [
                r.cores,
                r.ideal_speedup,
                round(r.model_speedup, 3),
                round(r.model_efficiency, 4),
                "" if r.paper_efficiency is None else r.paper_efficiency,
            ]
            for r in rows
        ],
    )
    by_cores = {r.cores: r for r in rows}
    for cores, eff in PAPER_FIG5_EFFICIENCY.items():
        assert by_cores[cores].model_efficiency == pytest.approx(eff, abs=0.02)

    benchmark(run_fig5)


@pytest.mark.parametrize("threads", [1, 2, 4])
def test_openmp_solver_step(benchmark, threads):
    """Real execution of the OpenMP-style program at several widths."""
    sim = Simulation(scaled_profiling_config(scale=6, solver="openmp", num_threads=threads))
    try:
        sim.run(1)  # warm the pool
        benchmark(sim.run, 1)
    finally:
        sim.close()
