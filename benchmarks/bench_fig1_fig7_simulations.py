"""Benchmarks: paper Figures 1 and 7 — the showcase FSI simulations.

Figure 1 is the flexible circular plate fastened in the middle; Figure 7
is the moving elastic sheet in a tunnel flow.  Both are *simulation
snapshots* in the paper; here each scenario is run at reduced scale, its
defining qualitative behaviour is asserted, and the trajectory summary
is emitted.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import BoundaryConfig, Simulation, SimulationConfig, StructureConfig
from repro.io.csvout import write_csv
from repro.profiling.report import render_table

STEPS = 60


def _tunnel_config() -> SimulationConfig:
    return SimulationConfig(
        fluid_shape=(32, 16, 16),
        tau=0.7,
        structure=StructureConfig(
            kind="flat_sheet", num_fibers=8, nodes_per_fiber=8,
            stretch_coefficient=5e-2, bend_coefficient=5e-4,
        ),
        boundaries=(
            BoundaryConfig("bounce_back", "x", "low", wall_velocity=(0.05, 0, 0)),
            BoundaryConfig("outflow", "x", "high"),
        ),
        solver="sequential",
    )


def _plate_config() -> SimulationConfig:
    return SimulationConfig(
        fluid_shape=(32, 20, 20),
        tau=0.7,
        structure=StructureConfig(
            kind="circular_plate", num_fibers=11, nodes_per_fiber=11,
            stretch_coefficient=4e-2, bend_coefficient=4e-4,
            tether_coefficient=2e-1,
        ),
        boundaries=(
            BoundaryConfig("bounce_back", "x", "low", wall_velocity=(0.04, 0, 0)),
            BoundaryConfig("outflow", "x", "high"),
        ),
        solver="sequential",
    )


def test_fig7_sheet_in_tunnel(benchmark, emit, results_dir):
    """Figure 7: the sheet is carried downstream by the tunnel flow."""
    with Simulation(_tunnel_config()) as sim:
        sheet = sim.structure.sheets[0]
        x0 = sheet.centroid()[0]
        rows = []
        for _ in range(4):
            sim.run(STEPS // 4)
            rows.append(
                [
                    sim.time_step,
                    round(float(sheet.centroid()[0]), 3),
                    round(float(sim.max_velocity()), 4),
                    round(float(sim.structure.elastic_energy()), 6),
                ]
            )
        drift = float(sheet.centroid()[0] - x0)
    emit(
        "fig7_sheet_in_tunnel",
        render_table(
            ["Step", "Centroid x", "Max |u|", "Elastic energy"],
            rows,
            title="Figure 7: moving elastic sheet in a 3D tunnel (scaled run)",
        )
        + f"\ndownstream drift over {STEPS} steps: {drift:+.3f} lattice units",
    )
    write_csv(
        results_dir / "fig7_sheet_in_tunnel.csv",
        ["step", "centroid_x", "max_u", "elastic_energy"],
        rows,
    )
    assert drift > 0.05, "the sheet must be advected downstream"

    with Simulation(_tunnel_config()) as fresh:
        fresh.run(1)
        benchmark(fresh.run, 1)


def test_fig1_fastened_circular_plate(benchmark, emit, results_dir):
    """Figure 1: the plate's free rim bows while the centre holds."""
    with Simulation(_plate_config()) as sim:
        sheet = sim.structure.sheets[0]
        rows = []
        for _ in range(3):
            sim.run(STEPS // 3)
            disp = sheet.positions[..., 0] - sheet.anchors[..., 0]
            rim = sheet.active & ~sheet.tethered
            rows.append(
                [
                    sim.time_step,
                    round(float(np.abs(disp[sheet.tethered]).mean()), 4),
                    round(float(disp[rim].mean()), 4),
                    round(float(sheet.max_stretch_ratio()), 4),
                ]
            )
        disp = sheet.positions[..., 0] - sheet.anchors[..., 0]
        rim = sheet.active & ~sheet.tethered
        center_drift = float(np.abs(disp[sheet.tethered]).mean())
        rim_drift = float(np.abs(disp[rim]).mean())
    emit(
        "fig1_circular_plate",
        render_table(
            ["Step", "Centre |drift|", "Rim drift", "Max stretch"],
            rows,
            title="Figure 1: flexible circular plate fastened in the middle (scaled run)",
        )
        + f"\ncentre {center_drift:.4f} vs rim {rim_drift:.4f}: the fastened middle holds",
    )
    write_csv(
        results_dir / "fig1_circular_plate.csv",
        ["step", "center_drift", "rim_drift", "max_stretch"],
        rows,
    )
    assert center_drift < rim_drift, "the fastened centre must move less than the rim"

    with Simulation(_plate_config()) as fresh:
        fresh.run(1)
        benchmark(fresh.run, 1)
