"""Benchmark: float32/mixed precision policies vs the float64 baseline.

Measures the array backend's precision policies
(:mod:`repro.core.backend`) on the fused and in-place hot paths over
the Table-I profiling workload, and emits the machine-readable record
``benchmarks/results/BENCH_precision.json``.

Two entry points:

* ``make bench-precision`` (this file as a script) — full run on the
  Table-I grid (62 x 32 x 32), prints the table, writes the JSON;
* ``pytest benchmarks/ --benchmark-only`` — pytest-benchmark timing of
  one whole float32 fused step on a smaller grid.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from dataclasses import replace

from repro.api import Simulation
from repro.experiments.bench_precision import (
    render_bench_precision,
    run_bench_precision,
)
from repro.experiments.workloads import scaled_profiling_config

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def write_bench_precision(result: dict, path: pathlib.Path) -> None:
    """Persist the benchmark record as pretty-printed JSON."""
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def test_whole_step_float32_fused(benchmark):
    """Time one full float32 fused step on a scale-4 grid."""
    config = replace(
        scaled_profiling_config(scale=4, solver="fused"), precision="float32"
    )
    sim = Simulation(config)
    try:
        sim.run(2)  # warmup: arena, shift table, stencil cache
        benchmark(sim.step)
    finally:
        sim.close()


def test_bench_precision_json(emit, results_dir):
    """Emit BENCH_precision.json from a reduced run and sanity-check it."""
    result = run_bench_precision(scale=4, steps=4, warmup=2)
    emit("bench_precision", render_bench_precision(result))
    write_bench_precision(result, results_dir / "BENCH_precision.json")
    # Structural claims (grid-size independent): 4-byte storage halves
    # the lattice footprint, the mixed policy stores like float32.
    lattice = result["lattice_bytes"]
    for variant in ("fused", "inplace"):
        assert lattice["float64"][variant] == 2 * lattice["float32"][variant]
        assert lattice["mixed"][variant] == lattice["float32"][variant]
    # The timing speedups are asserted on the full Table-I grid by the
    # checked-in baseline + `make bench-gate`, not on this smoke grid
    # (at scale 4 the step is dispatch-dominated, not memory-bound).
    for variant in ("fused", "inplace"):
        assert result[f"float32_{variant}_speedup"] > 0


# ----------------------------------------------------------------------
# command line (make bench-precision)
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_precision.py",
        description="precision-policy benchmark; writes BENCH_precision.json",
    )
    parser.add_argument(
        "--scale", type=int, default=2,
        help="grid divisor of the Table-I workload (2 = the 62x32x32 grid)",
    )
    parser.add_argument("--steps", type=int, default=10, help="timed steps")
    parser.add_argument("--warmup", type=int, default=3, help="warmup steps")
    parser.add_argument(
        "--output", type=pathlib.Path,
        default=RESULTS_DIR / "BENCH_precision.json",
        help="JSON output path",
    )
    parser.add_argument(
        "--autotune", action="store_true",
        help="also run the autotuner on this workload and print its pick",
    )
    args = parser.parse_args(argv)

    result = run_bench_precision(
        scale=args.scale, steps=args.steps, warmup=args.warmup
    )
    print(render_bench_precision(result))
    write_bench_precision(result, args.output)
    print(f"\nwrote {args.output}")
    if args.autotune:
        from repro.experiments.bench_tune import autotune_addendum

        print()
        print(autotune_addendum(scale=args.scale, precision="float32"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
