"""Benchmark: paper Figure 8 — weak scaling, OpenMP vs cube-based.

The execution-time curves come from the machine model on the thog
preset (growth rates and the 53%-at-64-cores headline are checked
against the paper).  The timed part runs both real parallel programs on
identical reduced inputs so their per-step costs on this machine are
measured side by side.
"""

from __future__ import annotations

import pytest

from repro.api import Simulation
from repro.experiments.fig8 import render_fig8, run_fig8
from repro.experiments.workloads import scaled_profiling_config
from repro.io.csvout import write_csv


def test_fig8_reproduction(benchmark, emit, results_dir):
    rows = run_fig8()
    emit("fig8_weak_scaling", render_fig8(rows))
    write_csv(
        results_dir / "fig8_weak_scaling.csv",
        [
            "cores",
            "grid",
            "openmp_seconds",
            "cube_seconds",
            "openmp_growth",
            "cube_growth",
            "openmp_over_cube",
        ],
        [
            [
                r.cores,
                "x".join(map(str, r.fluid_shape)),
                round(r.openmp_seconds, 3),
                round(r.cube_seconds, 3),
                "" if r.openmp_growth is None else round(r.openmp_growth, 3),
                "" if r.cube_growth is None else round(r.cube_growth, 3),
                round(r.openmp_over_cube, 3),
            ]
            for r in rows
        ],
    )
    assert rows[-1].openmp_over_cube == pytest.approx(1.53, abs=0.03)
    # cube grows slower at every doubling
    for r in rows[1:]:
        assert r.cube_growth < r.openmp_growth

    benchmark(run_fig8)


def test_openmp_solver_real_step(benchmark):
    sim = Simulation(scaled_profiling_config(scale=8, solver="openmp", num_threads=2))
    try:
        sim.run(1)
        benchmark(sim.run, 1)
    finally:
        sim.close()


def test_cube_solver_real_step(benchmark):
    sim = Simulation(
        scaled_profiling_config(scale=8, solver="cube", num_threads=2, cube_size=4)
    )
    try:
        sim.run(1)
        benchmark(sim.run, 1)
    finally:
        sim.close()


def test_sequential_solver_real_step(benchmark):
    sim = Simulation(scaled_profiling_config(scale=8))
    try:
        sim.run(1)
        benchmark(sim.run, 1)
    finally:
        sim.close()
