"""Benchmark: batched multi-simulation execution vs the solo-loop baseline.

Measures the library's ``variant="batched"`` subsystem — B simulations
stacked along a leading batch axis so each fluid kernel is one numpy
call for the whole batch, plus the continuous-batching scheduler — and
emits the machine-readable record ``benchmarks/results/BENCH_batch.json``.

Two entry points:

* ``make bench-batch`` (this file as a script) — full run, prints the
  table, writes the JSON;
* ``pytest benchmarks/ --benchmark-only`` — pytest-benchmark timing of
  one batched sweep vs one solo round-robin sweep.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

import pytest

from repro.experiments.bench_batch import render_bench_batch, run_bench_batch

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def write_bench_batch(result: dict, path: pathlib.Path) -> None:
    """Persist the benchmark record as pretty-printed JSON."""
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
@pytest.mark.parametrize("batch", [4])
def test_batched_sweep(benchmark, batch):
    """Time one batched step of a B-slot batch on the small grid."""
    from repro.batch import BatchedFluidGrid, BatchedLBMIBSolver

    grid = BatchedFluidGrid((8, 8, 8), batch, tau=0.8)
    solver = BatchedLBMIBSolver(grid)
    solver.run(2)  # warmup: arena, shift table
    benchmark(solver.run, 1)


def test_bench_batch_json(emit, results_dir):
    """Emit BENCH_batch.json from a reduced run and sanity-check it."""
    result = run_bench_batch(steps=5, warmup=2, batch_sizes=(1, 4))
    emit("bench_batch", render_bench_batch(result))
    write_bench_batch(result, results_dir / "BENCH_batch.json")
    assert result["fluid_only"]["b4"]["max_abs_delta"] == 0.0
    assert result["fluid_only"]["b4"]["speedup"] > 1.0
    assert result["scheduler"]["completed"] == result["scheduler"]["jobs"]


# ----------------------------------------------------------------------
# command line (make bench-batch)
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_batch_throughput.py",
        description="batched-vs-solo-loop benchmark; writes BENCH_batch.json",
    )
    parser.add_argument(
        "--shape", type=int, nargs=3, default=(8, 8, 8),
        metavar=("NX", "NY", "NZ"), help="fluid grid shape",
    )
    parser.add_argument("--steps", type=int, default=20, help="timed steps")
    parser.add_argument("--warmup", type=int, default=3, help="warmup steps")
    parser.add_argument(
        "--batch-sizes", type=int, nargs="+", default=(1, 4, 16),
        help="batch axis lengths to measure",
    )
    parser.add_argument(
        "--fsi-fibers", type=int, default=4,
        help="flat-sheet size (NxN fiber nodes) of the FSI measurement",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=RESULTS_DIR / "BENCH_batch.json",
        help="JSON output path",
    )
    parser.add_argument(
        "--autotune", action="store_true",
        help="also run the autotuner on this workload and print its pick",
    )
    args = parser.parse_args(argv)

    result = run_bench_batch(
        shape=tuple(args.shape),
        steps=args.steps,
        warmup=args.warmup,
        batch_sizes=tuple(args.batch_sizes),
        fsi_fibers=args.fsi_fibers,
    )
    print(render_bench_batch(result))
    write_bench_batch(result, args.output)
    print(f"\nwrote {args.output}")
    if args.autotune:
        from repro.experiments.bench_tune import autotune_addendum

        print()
        print(
            autotune_addendum(
                fluid_shape=tuple(args.shape),
                batch_size=max(args.batch_sizes),
            )
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
