"""Benchmark: fused memory-aware hot path vs the sequential program.

Measures the library's ``variant="fused"`` solver (fused collide-and-
stream, two-lattice swap, zero-allocation scratch arena, bincount
scatter, shared delta stencils) against the kernel-by-kernel sequential
reference on the Table-I profiling workload, and emits the machine-
readable record ``benchmarks/results/BENCH_fused.json``.

Two entry points:

* ``make bench-fused`` (this file as a script) — full run on the
  Table-I grid (62 x 32 x 32), prints the table, writes the JSON;
* ``pytest benchmarks/ --benchmark-only`` — pytest-benchmark timings
  of one whole step per variant on a smaller grid.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

import pytest

from repro.api import Simulation
from repro.experiments.bench_fused import render_bench_fused, run_bench_fused
from repro.experiments.workloads import scaled_profiling_config

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def write_bench_fused(result: dict, path: pathlib.Path) -> None:
    """Persist the benchmark record as pretty-printed JSON."""
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
@pytest.mark.parametrize("solver", ["sequential", "fused"])
def test_whole_step(benchmark, solver):
    """Time one full step of each variant on a scale-4 grid."""
    sim = Simulation(scaled_profiling_config(scale=4, solver=solver))
    try:
        sim.run(2)  # warmup: arena, shift table, stencil cache
        benchmark(sim.run, 1)
    finally:
        sim.close()


def test_bench_fused_json(emit, results_dir):
    """Emit BENCH_fused.json from a reduced run and sanity-check it."""
    result = run_bench_fused(scale=4, steps=3, warmup=2, scatter_repeats=2)
    emit("bench_fused", render_bench_fused(result))
    write_bench_fused(result, results_dir / "BENCH_fused.json")
    assert result["scatter"]["max_abs_delta"] == 0.0
    fluid_only = result["fluid_only"]["fused"]
    assert fluid_only["alloc_peak_bytes"] < fluid_only["scalar_field_bytes"]


# ----------------------------------------------------------------------
# command line (make bench-fused)
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_fused_kernels.py",
        description="sequential-vs-fused benchmark; writes BENCH_fused.json",
    )
    parser.add_argument(
        "--scale", type=int, default=2,
        help="grid divisor of the Table-I workload (2 = the 62x32x32 grid)",
    )
    parser.add_argument("--steps", type=int, default=10, help="timed steps")
    parser.add_argument("--warmup", type=int, default=3, help="warmup steps")
    parser.add_argument(
        "--scatter-repeats", type=int, default=5,
        help="repeats of the scatter microbenchmark",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=RESULTS_DIR / "BENCH_fused.json",
        help="JSON output path",
    )
    parser.add_argument(
        "--autotune", action="store_true",
        help="also run the autotuner on this workload and print its pick",
    )
    args = parser.parse_args(argv)

    result = run_bench_fused(
        scale=args.scale,
        steps=args.steps,
        warmup=args.warmup,
        scatter_repeats=args.scatter_repeats,
    )
    print(render_bench_fused(result))
    write_bench_fused(result, args.output)
    print(f"\nwrote {args.output}")
    if args.autotune:
        from repro.experiments.bench_tune import autotune_addendum

        print()
        print(autotune_addendum(scale=args.scale))
    return 0


if __name__ == "__main__":
    sys.exit(main())
