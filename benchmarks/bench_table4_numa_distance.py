"""Benchmark: paper Table IV — NUMA node distances on thog.

Renders the ``numactl --hardware`` distance matrix and checks the
derived quantities the paper calls out (remote access up to 2.2x
local); times the NUMA-factor computation used inside the performance
model.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.table34 import max_remote_ratio, render_table4
from repro.io.csvout import write_csv
from repro.machine.numa import interleave_distance_factor
from repro.machine.spec import thog


def test_table4_reproduction(benchmark, emit, results_dir):
    emit("table4_numa_distance", render_table4())
    m = thog()
    write_csv(
        results_dir / "table4_numa_distance.csv",
        ["node"] + [str(j) for j in range(8)],
        [[i] + [int(v) for v in m.numa_distance[i]] for i in range(8)],
    )
    assert max_remote_ratio(m) == 2.2
    assert (np.diag(m.numa_distance) == 10).all()

    factor = benchmark(interleave_distance_factor, m, 64)
    assert factor == 1.75
