"""Benchmark: single-lattice AA-pattern solver vs the fused hot path.

Measures the library's ``variant="inplace"`` solver (one lattice, even
collide-and-swap steps alternating with odd pull-swap streaming steps,
no ``df_new`` buffer, no copy kernel) against the two-lattice fused
variant on the Table-I profiling workload, and emits the machine-
readable record ``benchmarks/results/BENCH_inplace.json``.

Two entry points:

* ``make bench-inplace`` (this file as a script) — full run on the
  Table-I grid (62 x 32 x 32), prints the table, writes the JSON;
* ``pytest benchmarks/ --benchmark-only`` — pytest-benchmark timing of
  one whole in-place step on a smaller grid.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.api import Simulation
from repro.experiments.bench_inplace import render_bench_inplace, run_bench_inplace
from repro.experiments.workloads import scaled_profiling_config

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def write_bench_inplace(result: dict, path: pathlib.Path) -> None:
    """Persist the benchmark record as pretty-printed JSON."""
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def test_whole_step_inplace(benchmark):
    """Time one full in-place step on a scale-4 grid."""
    sim = Simulation(scaled_profiling_config(scale=4, solver="inplace"))
    try:
        sim.run(2)  # warmup: arena, shift table, stencil cache
        benchmark(sim.run, 2)  # one even + one odd phase
    finally:
        sim.close()


def test_bench_inplace_json(emit, results_dir):
    """Emit BENCH_inplace.json from a reduced run and sanity-check it."""
    result = run_bench_inplace(scale=4, steps=4, warmup=2)
    emit("bench_inplace", render_bench_inplace(result))
    write_bench_inplace(result, results_dir / "BENCH_inplace.json")
    # The structural claim this benchmark exists for: the single lattice
    # carries half the distribution-buffer footprint of the fused pair.
    assert result["lattice_peak_ratio"] >= 1.8
    fluid_only = result["fluid_only"]["inplace"]
    assert fluid_only["alloc_peak_bytes"] < fluid_only["scalar_field_bytes"]


# ----------------------------------------------------------------------
# command line (make bench-inplace)
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_inplace.py",
        description="fused-vs-inplace benchmark; writes BENCH_inplace.json",
    )
    parser.add_argument(
        "--scale", type=int, default=2,
        help="grid divisor of the Table-I workload (2 = the 62x32x32 grid)",
    )
    parser.add_argument("--steps", type=int, default=10, help="timed steps")
    parser.add_argument("--warmup", type=int, default=3, help="warmup steps")
    parser.add_argument(
        "--output", type=pathlib.Path, default=RESULTS_DIR / "BENCH_inplace.json",
        help="JSON output path",
    )
    parser.add_argument(
        "--autotune", action="store_true",
        help="also run the autotuner on this workload and print its pick",
    )
    args = parser.parse_args(argv)

    result = run_bench_inplace(scale=args.scale, steps=args.steps, warmup=args.warmup)
    print(render_bench_inplace(result))
    write_bench_inplace(result, args.output)
    print(f"\nwrote {args.output}")
    if args.autotune:
        from repro.experiments.bench_tune import autotune_addendum

        print()
        print(autotune_addendum(scale=args.scale))
    return 0


if __name__ == "__main__":
    sys.exit(main())
