"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures: it
prints the paper-style text table (visible with ``pytest -s`` and
always written to ``benchmarks/results/``) and times a representative
computation through pytest-benchmark.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory collecting the regenerated tables (text + CSV)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def emit(results_dir):
    """Print a regenerated artifact and persist it to results/."""

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _emit
