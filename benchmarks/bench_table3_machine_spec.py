"""Benchmark: paper Table III — the 64-core thog machine description.

The table is spec data; the benchmark times the machine-model queries
that every scaling prediction performs against it.
"""

from __future__ import annotations

from repro.experiments.table34 import render_table3, table3_rows
from repro.io.csvout import write_csv
from repro.machine.numa import interleave_distance_factor
from repro.machine.spec import thog


def test_table3_reproduction(benchmark, emit, results_dir):
    emit("table3_machine_spec", render_table3())
    rows = table3_rows()
    write_csv(results_dir / "table3_machine_spec.csv", ["attribute", "value"], rows)
    values = dict(rows)
    assert values["Cores per processor"] == "16"
    assert values["Number of processors"] == "4"
    assert values["Number of NUMA nodes"] == "8"

    def spec_queries():
        m = thog()
        m.cache(1), m.cache(2), m.cache(3)
        for n in (1, 8, 64):
            interleave_distance_factor(m, n)
        return m.num_cores

    assert benchmark(spec_queries) == 64
