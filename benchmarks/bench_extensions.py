"""Benchmarks: the paper's future-work extensions, measured.

The paper's conclusion names three extensions; all are implemented and
compared here against the barrier-based cube solver on the same input:

* dynamic task scheduling instead of global barriers
  (:class:`~repro.parallel.AsyncCubeLBMIBSolver`),
* distributed memory via message passing
  (:class:`~repro.distributed.DistributedLBMIBSolver`),
* auto-tuning of the cube size (:mod:`repro.tuning`).
"""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig, StructureConfig
from repro.core.ib import geometry
from repro.core.lbm.fields import FluidGrid
from repro.distributed import DistributedLBMIBSolver, HybridCubeLBMIBSolver
from repro.io.csvout import write_csv
from repro.machine.spec import thog
from repro.parallel import AsyncCubeLBMIBSolver, CubeGrid, CubeLBMIBSolver
from repro.profiling.report import render_table
from repro.tuning import autotune_cube_size, suggest_cube_size

SHAPE = (16, 16, 16)


def _state():
    grid = FluidGrid(SHAPE, tau=0.8)
    structure = geometry.flat_sheet(
        SHAPE, num_fibers=8, nodes_per_fiber=8, stretch_coefficient=0.02
    )
    structure.sheets[0].positions[4, 4, 0] += 0.5
    return grid, structure


def test_async_vs_barrier_cube_solver(benchmark, emit, results_dir):
    """Barrier-based vs task-scheduled cube solver on identical input."""
    grid, structure = _state()
    cg = CubeGrid.from_fluid_grid(grid, cube_size=4)
    barrier_solver = CubeLBMIBSolver(cg, structure, num_threads=2)
    barrier_solver.run(1)

    grid2, structure2 = _state()
    cg2 = CubeGrid.from_fluid_grid(grid2, cube_size=4)
    async_solver = AsyncCubeLBMIBSolver(cg2, structure2, num_threads=2)
    async_solver.run(1)

    import time

    t0 = time.perf_counter()
    barrier_solver.run(3)
    barrier_time = time.perf_counter() - t0

    result = benchmark.pedantic(
        async_solver.run, args=(3,), rounds=1, iterations=1
    )
    crossings = sum(b.stats.crossings for b in async_solver.barriers.values())
    emit(
        "extension_async_schedule",
        render_table(
            ["Schedule", "Barrier crossings (4 steps)", "Note"],
            [
                ["3 global barriers / step", 3 * 4, "paper Algorithm 4"],
                ["dynamic task graph", crossings, "future-work prototype"],
            ],
            title="Extension: dynamic task scheduling removes the global barriers",
        )
        + f"\nbarrier-solver 3 steps: {barrier_time:.3f}s",
    )
    assert crossings == 0


def test_distributed_solver_step(benchmark, emit, results_dir):
    """Distributed ranks with halo exchange; reports traffic volume."""
    grid, structure = _state()
    solver = DistributedLBMIBSolver(grid, structure, num_ranks=2)
    solver.run(1)
    benchmark(solver.run, 1)
    steps = solver.time_step
    emit(
        "extension_distributed",
        render_table(
            ["Ranks", "Steps", "Messages", "Halo bytes"],
            [
                [
                    solver.num_ranks,
                    steps,
                    solver.comm.total_messages(),
                    solver.comm.total_bytes_sent(),
                ]
            ],
            title="Extension: distributed-memory halo exchange traffic",
        ),
    )
    write_csv(
        results_dir / "extension_distributed.csv",
        ["ranks", "steps", "messages", "bytes"],
        [[solver.num_ranks, steps, solver.comm.total_messages(), solver.comm.total_bytes_sent()]],
    )


def test_hybrid_distributed_cube_step(benchmark, emit, results_dir):
    """The cube layout inside every rank — the paper's exact future work."""
    grid, structure = _state()
    solver = HybridCubeLBMIBSolver(grid, structure, num_ranks=2, cube_size=4)
    solver.run(1)
    benchmark(solver.run, 1)
    emit(
        "extension_hybrid",
        render_table(
            ["Ranks", "Cube size", "Slab planes", "Messages", "Halo bytes"],
            [
                [
                    solver.num_ranks,
                    solver.cube_size,
                    "/".join(str(n) for n in solver.slab_sizes),
                    solver.comm.total_messages(),
                    solver.comm.total_bytes_sent(),
                ]
            ],
            title="Extension: distributed ranks with cube-centric local layout",
        ),
    )


def test_cube_size_autotuning(benchmark, emit, results_dir):
    """Model suggestion + empirical sweep of the cube size."""
    config = SimulationConfig(
        fluid_shape=SHAPE,
        structure=StructureConfig(kind="flat_sheet", num_fibers=8, nodes_per_fiber=8),
        num_threads=2,
    )
    suggestion = suggest_cube_size(SHAPE, thog())
    result = benchmark.pedantic(
        autotune_cube_size,
        kwargs={"config": config, "candidates": [2, 4, 8], "steps": 2},
        rounds=1,
        iterations=1,
    )
    emit(
        "extension_autotune",
        render_table(
            ["Cube size k", "Seconds", "Best"],
            result.as_rows(),
            title=(
                "Extension: cube-size auto-tuning "
                f"(model suggests k={suggestion} for thog's L2)"
            ),
        ),
    )
    write_csv(
        results_dir / "extension_autotune.csv",
        ["cube_size", "seconds"],
        [[k, round(s, 4)] for k, s in sorted(result.seconds_by_size.items())],
    )
    assert result.best_cube_size in (2, 4, 8)
