"""Benchmark: paper Table I — sequential kernel time breakdown.

Regenerates the gprof profile (paper vs machine model vs our measured
NumPy shares) and times each of the nine kernels individually on a
scaled version of the paper's input, so the per-kernel costs are real
wall-clock numbers from this machine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import kernels
from repro.core.ib import geometry
from repro.core.lbm.fields import FluidGrid
from repro.experiments.table1 import render_table1, run_table1
from repro.io.csvout import write_csv

#: Scaled profiling input: same aspect ratio as the paper's 124x64x64.
SHAPE = (62, 32, 32)
FIBERS = 26  # half of the paper's 52x52


@pytest.fixture(scope="module")
def state():
    grid = FluidGrid(SHAPE, tau=0.8)
    structure = geometry.flat_sheet(
        SHAPE, num_fibers=FIBERS, nodes_per_fiber=FIBERS, stretch_coefficient=0.02
    )
    structure.sheets[0].positions[FIBERS // 2, FIBERS // 2, 0] += 0.5
    # run a couple of steps so every buffer holds realistic data
    from repro.core.solver import SequentialLBMIBSolver

    SequentialLBMIBSolver(grid, structure).run(2)
    return grid, structure


def test_table1_reproduction(benchmark, emit, results_dir):
    """Regenerate Table I and time one full sequential step."""
    rows, meta = run_table1(scale=4, num_steps=5)
    emit("table1_kernel_profile", render_table1(rows, meta))
    write_csv(
        results_dir / "table1_kernel_profile.csv",
        ["kernel", "paper_percent", "model_percent", "measured_percent"],
        [[r.kernel, r.paper_percent, r.model_percent, r.measured_percent] for r in rows],
    )

    from repro.api import Simulation
    from repro.experiments.workloads import scaled_profiling_config

    sim = Simulation(scaled_profiling_config(scale=4))
    try:
        benchmark(sim.run, 1)
    finally:
        sim.close()
    assert rows[0].kernel == "compute_fluid_collision"


def test_kernel5_collision(benchmark, state):
    grid, _ = state
    benchmark(kernels.compute_fluid_collision, grid)


def test_kernel6_streaming(benchmark, state):
    grid, _ = state
    benchmark(kernels.stream_fluid_velocity_distribution, grid)


def test_kernel7_update_velocity(benchmark, state):
    grid, _ = state
    benchmark(kernels.update_fluid_velocity, grid)


def test_kernel9_copy(benchmark, state):
    grid, _ = state
    benchmark(kernels.copy_fluid_velocity_distribution, grid)


def test_kernel4_spread(benchmark, state):
    grid, structure = state
    kernels.compute_bending_force_in_fibers(structure)
    kernels.compute_stretching_force_in_fibers(structure)
    kernels.compute_elastic_force_in_fibers(structure)
    benchmark(kernels.spread_force_from_fibers_to_fluid, structure, grid)


def test_kernel8_move_fibers(benchmark, state):
    grid, structure = state
    positions = structure.sheets[0].positions.copy()

    def move_and_restore():
        kernels.move_fibers(structure, grid)
        structure.sheets[0].positions[...] = positions

    benchmark(move_and_restore)


def test_kernels_1_to_3_fiber_forces(benchmark, state):
    _, structure = state

    def fiber_forces():
        kernels.compute_bending_force_in_fibers(structure)
        kernels.compute_stretching_force_in_fibers(structure)
        kernels.compute_elastic_force_in_fibers(structure)

    benchmark(fiber_forces)
