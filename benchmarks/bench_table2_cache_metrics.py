"""Benchmark: paper Table II — cache miss rates and load imbalance.

Regenerates the PAPI/OmpP table through the cache simulator (with the
Abu Dhabi cache geometry) and the partition-derived imbalance, and
times the cache simulation itself — the substrate's own cost matters
when sweeping configurations.
"""

from __future__ import annotations

import pytest

from repro.experiments.table2 import render_table2, run_table2
from repro.io.csvout import write_csv
from repro.machine.counters import SimulatedCounters
from repro.machine.spec import abu_dhabi

SIM_SHAPE = (32, 16, 64)


def test_table2_reproduction(benchmark, emit, results_dir):
    """Regenerate Table II and time one slab's cache simulation."""
    rows = run_table2(sim_shape=SIM_SHAPE)
    emit("table2_cache_metrics", render_table2(rows))
    write_csv(
        results_dir / "table2_cache_metrics.csv",
        [
            "cores",
            "paper_l1",
            "sim_l1",
            "paper_l2",
            "sim_l2",
            "cube_l2",
            "paper_imbalance",
            "structural_imbalance",
        ],
        [
            [
                r.cores,
                r.paper_l1,
                round(r.sim_l1, 3),
                r.paper_l2,
                round(r.sim_l2, 2),
                round(r.cube_l2, 2),
                r.paper_imbalance,
                round(r.structural_imbalance, 2),
            ]
            for r in rows
        ],
    )
    # trends: L1 flat and small, cube L2 below OpenMP L2
    l1 = [r.sim_l1 for r in rows]
    assert max(l1) - min(l1) < 1.0
    assert all(r.cube_l2 < r.sim_l2 for r in rows)

    counters = SimulatedCounters(abu_dhabi(), 124 * 64 * 64)
    benchmark(counters.openmp_miss_rates, SIM_SHAPE, 32, 0)


def test_cube_layout_cache_simulation(benchmark):
    """Time the cube-layout trace through the cache hierarchy."""
    counters = SimulatedCounters(abu_dhabi(), 124 * 64 * 64)
    result = benchmark(counters.cube_miss_rates, (16, 8, 16), 4)
    assert 0.0 <= result.l2 <= 1.0
