"""Benchmark: workload-adaptive autotuner vs hand-picked configurations.

Exhaustively measures the tuning candidate space (variant x precision x
scatter x batch width) for the Table-I profiling workload, runs the
:class:`~repro.tuning.autotuner.Autotuner`'s model-guided top-N probe
against it, and emits ``benchmarks/results/BENCH_tune.json`` recording
``auto_vs_best``, ``worst_vs_auto`` and per-candidate prediction error.

Two entry points:

* ``make bench-tune`` (this file as a script) — full run on the Table-I
  grid (62 x 32 x 32); asserts the acceptance ratios (auto within 5% of
  the best hand-picked candidate, >= 1.3x better than the worst);
* ``pytest benchmarks/bench_tune.py`` — reduced smoke run that checks
  the record's structure and that every prediction error is finite (the
  timing ratios are meaningless on a dispatch-dominated smoke grid).
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import sys

from repro.experiments.bench_tune import render_bench_tune, run_bench_tune

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def write_bench_tune(result: dict, path: pathlib.Path) -> None:
    """Persist the benchmark record as pretty-printed JSON."""
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")


# ----------------------------------------------------------------------
# pytest entry point (CI smoke)
# ----------------------------------------------------------------------
def test_bench_tune_json(emit, results_dir, tmp_path):
    """Emit BENCH_tune.json from a reduced run and sanity-check it."""
    result = run_bench_tune(
        scale=4,
        steps=2,
        warmup=1,
        repeats=2,
        budget_seconds=5.0,
        cache_path=str(tmp_path / "tuned.json"),
    )
    emit("bench_tune", render_bench_tune(result))
    write_bench_tune(result, results_dir / "BENCH_tune.json")
    # Structural claims only — the smoke grid is dispatch-dominated, so
    # the acceptance ratios are asserted by the full-grid script run.
    summary = result["prediction_error_summary"]
    assert summary["finite"]
    assert math.isfinite(summary["median_abs"])
    assert math.isfinite(summary["max_abs"])
    labels = {row["label"] for row in result["candidates"]}
    assert result["auto"]["label"] in labels or result["candidates"]
    assert sum(row["auto"] for row in result["candidates"]) <= 1
    assert result["auto_vs_best"] >= 1.0
    assert result["worst_vs_auto"] >= 1.0
    # The decision must be replayable from the persisted cache.
    assert result["decision"]["candidate"]["variant"]
    assert math.isfinite(result["model_scale"]) and result["model_scale"] > 0


# ----------------------------------------------------------------------
# command line (make bench-tune)
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_tune.py",
        description="autotuner benchmark; writes BENCH_tune.json",
    )
    parser.add_argument(
        "--scale", type=int, default=2,
        help="grid divisor of the Table-I workload (2 = the 62x32x32 grid)",
    )
    parser.add_argument("--steps", type=int, default=5, help="timed steps")
    parser.add_argument("--warmup", type=int, default=2, help="warmup steps")
    parser.add_argument(
        "--repeats", type=int, default=3, help="interleaved timing rounds"
    )
    parser.add_argument(
        "--budget", type=float, default=None,
        help="probe wall-second budget for the autotuner stage",
    )
    parser.add_argument(
        "--cache", type=pathlib.Path,
        default=RESULTS_DIR / "tuned_decisions.json",
        help="decision-cache path used by the autotuner run",
    )
    parser.add_argument(
        "--output", type=pathlib.Path,
        default=RESULTS_DIR / "BENCH_tune.json",
        help="JSON output path",
    )
    parser.add_argument(
        "--no-check", action="store_true",
        help="skip the acceptance-ratio assertions (reduced grids)",
    )
    args = parser.parse_args(argv)

    result = run_bench_tune(
        scale=args.scale,
        steps=args.steps,
        warmup=args.warmup,
        repeats=args.repeats,
        budget_seconds=args.budget,
        cache_path=str(args.cache),
    )
    print(render_bench_tune(result))
    write_bench_tune(result, args.output)
    print(f"\nwrote {args.output}")

    if not args.no_check and args.scale <= 2:
        failures = []
        if result["auto_vs_best"] > 1.05:
            failures.append(
                f"auto_vs_best {result['auto_vs_best']:.3f} > 1.05"
            )
        if result["worst_vs_auto"] < 1.3:
            failures.append(
                f"worst_vs_auto {result['worst_vs_auto']:.3f} < 1.3"
            )
        if failures:
            print("ACCEPTANCE FAILED: " + "; ".join(failures))
            return 1
        print("acceptance ok: auto_vs_best <= 1.05, worst_vs_auto >= 1.3")
    return 0


if __name__ == "__main__":
    sys.exit(main())
