"""Property-based integration fuzz: all solvers agree on random scenarios.

Hypothesis draws a whole scenario — grid shape, structure, perturbation,
solver configuration — and the invariant is the paper's verification
statement: every parallel program reproduces the sequential result.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ib import geometry
from repro.core.lbm.fields import FluidGrid
from repro.core.solver import SequentialLBMIBSolver
from repro.distributed import DistributedLBMIBSolver, HybridCubeLBMIBSolver
from repro.parallel import (
    AsyncCubeLBMIBSolver,
    CubeGrid,
    CubeLBMIBSolver,
    OpenMPLBMIBSolver,
)

# Hypothesis re-runs each scenario many times; keep out of the smoke tier.
pytestmark = pytest.mark.slow

scenario = st.fixed_dictionaries(
    {
        "dims": st.tuples(
            st.sampled_from([8, 12, 16]),
            st.sampled_from([8, 12]),
            st.sampled_from([8, 12]),
        ),
        "seed": st.integers(0, 2**31),
        "tau": st.sampled_from([0.6, 0.8, 1.1]),
        "operator": st.sampled_from(["bgk", "trt"]),
        "threads": st.integers(1, 5),
        "cube_size": st.sampled_from([2, 4]),
        "steps": st.integers(1, 4),
        "with_structure": st.booleans(),
    }
)


def _build(params):
    grid = FluidGrid(
        params["dims"], tau=params["tau"], collision_operator=params["operator"]
    )
    rng = np.random.default_rng(params["seed"])
    grid.initialize_equilibrium(
        density=1.0 + 0.01 * rng.standard_normal(grid.shape),
        velocity=0.01 * rng.standard_normal((3,) + grid.shape),
    )
    structure = None
    if params["with_structure"]:
        structure = geometry.flat_sheet(
            params["dims"], num_fibers=3, nodes_per_fiber=3,
            stretch_coefficient=0.02,
        )
        structure.sheets[0].positions[1, 1, 0] += 0.4
    return grid, structure


class TestSolverEquivalenceFuzz:
    @given(params=scenario)
    @settings(max_examples=8, deadline=None)
    def test_openmp_matches_sequential(self, params):
        grid_a, struct_a = _build(params)
        grid_b = grid_a.copy()
        struct_b = struct_a.copy() if struct_a else None
        SequentialLBMIBSolver(grid_a, struct_a).run(params["steps"])
        with OpenMPLBMIBSolver(
            grid_b, struct_b, num_threads=params["threads"]
        ) as solver:
            solver.run(params["steps"])
        assert grid_a.state_allclose(grid_b, rtol=1e-10, atol=1e-12)

    @given(params=scenario)
    @settings(max_examples=8, deadline=None)
    def test_cube_matches_sequential(self, params):
        grid_a, struct_a = _build(params)
        grid_b = grid_a.copy()
        struct_b = struct_a.copy() if struct_a else None
        SequentialLBMIBSolver(grid_a, struct_a).run(params["steps"])
        cg = CubeGrid.from_fluid_grid(grid_b, cube_size=params["cube_size"])
        threads = min(params["threads"], min(cg.cube_counts))
        CubeLBMIBSolver(cg, struct_b, num_threads=threads).run(params["steps"])
        assert grid_a.state_allclose(cg.to_fluid_grid(), rtol=1e-10, atol=1e-12)

    @given(params=scenario)
    @settings(max_examples=6, deadline=None)
    def test_async_cube_matches_sequential(self, params):
        grid_a, struct_a = _build(params)
        grid_b = grid_a.copy()
        struct_b = struct_a.copy() if struct_a else None
        SequentialLBMIBSolver(grid_a, struct_a).run(params["steps"])
        cg = CubeGrid.from_fluid_grid(grid_b, cube_size=params["cube_size"])
        threads = min(params["threads"], min(cg.cube_counts))
        AsyncCubeLBMIBSolver(cg, struct_b, num_threads=threads).run(params["steps"])
        assert grid_a.state_allclose(cg.to_fluid_grid(), rtol=1e-10, atol=1e-12)

    @given(params=scenario)
    @settings(max_examples=6, deadline=None)
    def test_hybrid_matches_sequential(self, params):
        grid_a, struct_a = _build(params)
        grid_b = grid_a.copy()
        struct_b = struct_a.copy() if struct_a else None
        SequentialLBMIBSolver(grid_a, struct_a).run(params["steps"])
        k = 2 if any(n % 4 for n in params["dims"]) else params["cube_size"]
        ranks = min(params["threads"], params["dims"][0] // k)
        solver = HybridCubeLBMIBSolver(
            grid_b, struct_b, num_ranks=ranks, cube_size=k
        )
        solver.run(params["steps"])
        assert grid_a.state_allclose(solver.gather_fluid(), rtol=1e-10, atol=1e-12)

    @given(params=scenario)
    @settings(max_examples=6, deadline=None)
    def test_distributed_matches_sequential(self, params):
        grid_a, struct_a = _build(params)
        grid_b = grid_a.copy()
        struct_b = struct_a.copy() if struct_a else None
        SequentialLBMIBSolver(grid_a, struct_a).run(params["steps"])
        ranks = min(params["threads"], params["dims"][0])
        solver = DistributedLBMIBSolver(grid_b, struct_b, num_ranks=ranks)
        solver.run(params["steps"])
        assert grid_a.state_allclose(solver.gather_fluid(), rtol=1e-10, atol=1e-12)
