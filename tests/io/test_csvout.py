"""Tests of CSV emission."""

import pytest

from repro.io.csvout import read_csv, write_csv


class TestCsv:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(path, ["cores", "seconds"], [[1, 1.5], [2, 0.9]])
        headers, rows = read_csv(path)
        assert headers == ["cores", "seconds"]
        assert rows == [["1", "1.5"], ["2", "0.9"]]

    def test_ragged_rows_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(tmp_path / "x.csv", ["a", "b"], [[1]])

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            read_csv(path)

    def test_no_rows_is_fine(self, tmp_path):
        path = tmp_path / "h.csv"
        write_csv(path, ["only", "headers"], [])
        headers, rows = read_csv(path)
        assert headers == ["only", "headers"]
        assert rows == []
