"""Tests of checkpoint save/restore."""

import os

import numpy as np
import pytest

from repro.core.ib import geometry
from repro.core.lbm.fields import FluidGrid
from repro.core.solver import SequentialLBMIBSolver
from repro.errors import CheckpointError
from repro.io.checkpoint import load_checkpoint, payload_checksum, save_checkpoint


def _evolved_state():
    grid = FluidGrid((8, 8, 8), tau=0.8)
    structure = geometry.circular_plate(
        (8, 8, 8), num_fibers=5, nodes_per_fiber=5, radius=2.0
    )
    structure.sheets[0].positions[2, 2, 0] += 0.4
    solver = SequentialLBMIBSolver(grid, structure)
    solver.run(4)
    return grid, structure, solver


class TestRoundTrip:
    def test_fluid_state_exact(self, tmp_path):
        grid, structure, solver = _evolved_state()
        path = tmp_path / "ck.npz"
        save_checkpoint(path, grid, structure, time_step=solver.time_step)
        restored, _, step = load_checkpoint(path)
        assert step == 4
        assert restored.state_allclose(grid, rtol=0, atol=0)
        assert restored.tau == grid.tau

    def test_structure_state_exact(self, tmp_path):
        grid, structure, solver = _evolved_state()
        path = tmp_path / "ck.npz"
        save_checkpoint(path, grid, structure)
        _, restored, _ = load_checkpoint(path)
        sheet, orig = restored.sheets[0], structure.sheets[0]
        np.testing.assert_array_equal(sheet.positions, orig.positions)
        np.testing.assert_array_equal(sheet.active, orig.active)
        np.testing.assert_array_equal(sheet.tethered, orig.tethered)
        np.testing.assert_array_equal(sheet.anchors, orig.anchors)
        assert sheet.tether_coefficient == orig.tether_coefficient
        assert sheet.rest_spacing_fiber == orig.rest_spacing_fiber

    def test_fluid_only_checkpoint(self, tmp_path):
        grid = FluidGrid((4, 4, 4), tau=0.9)
        path = tmp_path / "ck.npz"
        save_checkpoint(path, grid)
        restored, structure, step = load_checkpoint(path)
        assert structure is None
        assert step == 0
        assert restored.state_allclose(grid)

    def test_restored_run_continues_identically(self, tmp_path):
        """The checkpoint contract: restore and continue bit-for-bit."""
        grid_a, structure_a, solver_a = _evolved_state()
        path = tmp_path / "ck.npz"
        save_checkpoint(path, grid_a, structure_a)

        grid_b, structure_b, _ = load_checkpoint(path)
        solver_b = SequentialLBMIBSolver(grid_b, structure_b)

        solver_a.run(3)
        solver_b.run(3)
        assert grid_a.state_allclose(grid_b, rtol=0, atol=0)
        assert structure_a.state_allclose(structure_b, rtol=0, atol=0)


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "nope.npz")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"not a zip at all")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_missing_field(self, tmp_path):
        path = tmp_path / "partial.npz"
        np.savez(path, format_version=np.array(1), shape=np.array([2, 2, 2]))
        with pytest.raises(CheckpointError, match="missing"):
            load_checkpoint(path)

    def test_wrong_version(self, tmp_path):
        grid = FluidGrid((2, 2, 2))
        path = tmp_path / "v.npz"
        save_checkpoint(path, grid)
        data = dict(np.load(path))
        data["format_version"] = np.array(99)
        np.savez(path, **data)
        with pytest.raises(CheckpointError, match="format"):
            load_checkpoint(path)


class TestRobustness:
    """Crash-safety: truncation, bit rot, and kill-mid-write scenarios."""

    def test_truncated_file_rejected(self, tmp_path):
        grid = FluidGrid((4, 4, 4))
        path = tmp_path / "ck.npz"
        save_checkpoint(path, grid)
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - 100)
        with pytest.raises(CheckpointError, match="truncated|unreadable|corrupt"):
            load_checkpoint(path)

    def test_flipped_bytes_fail_checksum(self, tmp_path):
        """Valid archive, corrupted numbers: caught by the payload checksum.

        Flipping raw bytes usually breaks the zip layer first, so to
        isolate the checksum path we re-save one mutated array with the
        *original* digest still attached.
        """
        grid = FluidGrid((4, 4, 4))
        path = tmp_path / "ck.npz"
        save_checkpoint(path, grid)
        data = dict(np.load(path))
        data["df"] = data["df"].copy()
        data["df"].flat[0] += 1e-3  # silent bit rot
        np.savez(path, **data)  # keeps the stale checksum entry
        with pytest.raises(CheckpointError, match="checksum"):
            load_checkpoint(path)

    def test_checksum_is_deterministic_and_order_free(self):
        a = {"x": np.arange(4.0), "y": np.ones(2)}
        b = {"y": np.ones(2), "x": np.arange(4.0)}
        assert payload_checksum(a) == payload_checksum(b)
        b["x"] = b["x"] + 1.0
        assert payload_checksum(a) != payload_checksum(b)

    def test_kill_between_tmp_and_replace(self, tmp_path, monkeypatch):
        """A crash after writing .tmp but before the rename must leave
        the previous checkpoint intact and loadable."""
        import repro.io.checkpoint as ck

        grid_old = FluidGrid((4, 4, 4))
        grid_old.density[...] = 2.0
        path = tmp_path / "ck.npz"
        save_checkpoint(path, grid_old)

        grid_new = FluidGrid((4, 4, 4))
        grid_new.density[...] = 3.0

        def crash(src, dst):
            raise OSError("simulated crash during rename")

        monkeypatch.setattr(ck.os, "replace", crash)
        with pytest.raises(CheckpointError, match="cannot write"):
            save_checkpoint(path, grid_new)
        monkeypatch.undo()

        restored, _, _ = load_checkpoint(path)
        assert float(restored.density[0, 0, 0]) == 2.0  # old state survived

    def test_orphan_tmp_never_loads_as_checkpoint(self, tmp_path):
        """The .tmp of an interrupted write is not a valid checkpoint
        name; the real path simply does not exist."""
        grid = FluidGrid((4, 4, 4))
        path = tmp_path / "ck.npz"
        # simulate: crash happened before replace; only the tmp exists
        with open(str(path) + ".tmp", "wb") as fh:
            np.savez_compressed(fh, half=np.ones(3))
        with pytest.raises(CheckpointError, match="missing, truncated"):
            load_checkpoint(path)
        # and a later save happily overwrites the orphan
        save_checkpoint(path, grid)
        restored, _, _ = load_checkpoint(path)
        assert restored.state_allclose(grid)
        assert not os.path.exists(str(path) + ".tmp")

    def test_save_appends_npz_suffix(self, tmp_path):
        grid = FluidGrid((2, 2, 2))
        save_checkpoint(tmp_path / "bare", grid)
        assert (tmp_path / "bare.npz").exists()
        restored, _, _ = load_checkpoint(tmp_path / "bare.npz")
        assert restored.state_allclose(grid)
