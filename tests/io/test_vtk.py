"""Tests of the legacy-VTK writers."""

import numpy as np
import pytest

from repro.core.ib import geometry
from repro.core.lbm.fields import FluidGrid
from repro.io.vtk import write_fluid_vtk, write_structure_vtk


class TestFluidVtk:
    def test_header_and_dimensions(self, tmp_path):
        grid = FluidGrid((4, 3, 2), tau=0.8)
        path = tmp_path / "fluid.vtk"
        write_fluid_vtk(path, grid)
        text = path.read_text()
        assert text.startswith("# vtk DataFile Version 3.0")
        assert "DIMENSIONS 4 3 2" in text
        assert "POINT_DATA 24" in text
        assert "SCALARS density" in text
        assert "VECTORS velocity" in text

    def test_density_values_in_vtk_order(self, tmp_path):
        grid = FluidGrid((2, 2, 2), tau=0.8)
        grid.density[...] = np.arange(8).reshape(2, 2, 2)
        path = tmp_path / "f.vtk"
        write_fluid_vtk(path, grid)
        lines = path.read_text().splitlines()
        start = lines.index("LOOKUP_TABLE default") + 1
        values = [float(v) for v in lines[start : start + 8]]
        # VTK iterates x fastest: (0,0,0),(1,0,0),(0,1,0),(1,1,0),...
        assert values == [0.0, 4.0, 2.0, 6.0, 1.0, 5.0, 3.0, 7.0]

    def test_vorticity_optional(self, tmp_path):
        grid = FluidGrid((3, 3, 3), tau=0.8)
        p1, p2 = tmp_path / "a.vtk", tmp_path / "b.vtk"
        write_fluid_vtk(p1, grid, include_vorticity=False)
        write_fluid_vtk(p2, grid, include_vorticity=True)
        assert "vorticity" not in p1.read_text()
        assert "vorticity" in p2.read_text()


class TestStructureVtk:
    def test_polylines_per_fiber(self, tmp_path):
        structure = geometry.flat_sheet((16, 16, 16), num_fibers=4, nodes_per_fiber=5)
        path = tmp_path / "sheet.vtk"
        write_structure_vtk(path, structure)
        text = path.read_text()
        assert "POINTS 20 double" in text
        assert "LINES 4" in text
        assert "elastic_force_magnitude" in text

    def test_masked_nodes_excluded(self, tmp_path):
        structure = geometry.circular_plate(
            (24, 24, 24), num_fibers=9, nodes_per_fiber=9
        )
        sheet = structure.sheets[0]
        path = tmp_path / "plate.vtk"
        write_structure_vtk(path, structure)
        text = path.read_text()
        assert f"POINTS {sheet.num_active_nodes} double" in text

    def test_broken_fiber_splits_polyline(self, tmp_path):
        structure = geometry.flat_sheet((16, 16, 16), num_fibers=1, nodes_per_fiber=7)
        sheet = structure.sheets[0]
        sheet.active[0, 3] = False  # cut the fiber in the middle
        path = tmp_path / "cut.vtk"
        write_structure_vtk(path, structure)
        text = path.read_text()
        assert "LINES 2" in text
