"""Tests of the fault-injection framework itself.

The injector must be deterministic (same plan + seed => same damage),
honour once-semantics under concurrency, and match message filters with
wildcards — otherwise no recovery test built on top of it means much.
"""

import threading

import numpy as np
import pytest

from repro.core.lbm.fields import FluidGrid
from repro.errors import ConfigurationError, WorkerKilledError
from repro.resilience import Fault, FaultInjector, FaultPlan, IncidentLog


class TestFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            Fault(kind="set_on_fire")

    def test_negative_step_rejected(self):
        with pytest.raises(ConfigurationError, match="step"):
            Fault(kind="corrupt_field", step=-1)

    def test_corrupt_needs_positive_count(self):
        with pytest.raises(ConfigurationError, match="count"):
            Fault(kind="corrupt_field", count=0)

    def test_truncate_needs_positive_nbytes(self):
        with pytest.raises(ConfigurationError, match="nbytes"):
            Fault(kind="truncate_checkpoint", nbytes=0)

    def test_plan_is_iterable_and_sized(self):
        plan = FaultPlan.of([Fault(kind="kill_worker", step=3)], seed=7)
        assert len(plan) == 1
        assert list(plan)[0].kind == "kill_worker"
        assert plan.seed == 7


class TestCorruptField:
    def test_nan_injected_at_matching_step_and_tid(self):
        grid = FluidGrid((4, 4, 4))
        inj = FaultInjector([Fault(kind="corrupt_field", step=5, tid=1, count=3)])
        inj.on_step(tid=1, step=4, state=grid)  # wrong step: no-op
        inj.on_step(tid=0, step=5, state=grid)  # wrong tid: no-op
        assert np.isfinite(grid.df).all()
        inj.on_step(tid=1, step=5, state=grid)
        assert np.isnan(grid.df).sum() == 3

    def test_same_seed_same_elements(self):
        def damage(seed):
            grid = FluidGrid((4, 4, 4))
            plan = FaultPlan.of([Fault(kind="corrupt_field", step=0, count=5)], seed=seed)
            FaultInjector(plan).on_step(tid=0, step=0, state=grid)
            return np.flatnonzero(np.isnan(grid.df))

        np.testing.assert_array_equal(damage(42), damage(42))
        assert not np.array_equal(damage(42), damage(43))

    def test_targets_named_field(self):
        grid = FluidGrid((4, 4, 4))
        inj = FaultInjector([Fault(kind="corrupt_field", fluid_field="velocity")])
        inj.on_step(tid=0, step=0, state=grid)
        assert np.isnan(grid.velocity).any()
        assert np.isfinite(grid.df).all()

    def test_unknown_field_rejected(self):
        grid = FluidGrid((4, 4, 4))
        inj = FaultInjector([Fault(kind="corrupt_field", fluid_field="nope")])
        with pytest.raises(ConfigurationError, match="unknown fluid field"):
            inj.on_step(tid=0, step=0, state=grid)

    def test_fires_once(self):
        grid = FluidGrid((4, 4, 4))
        inj = FaultInjector([Fault(kind="corrupt_field", step=2, count=2)])
        inj.on_step(tid=0, step=2, state=grid)
        grid.df[...] = 1.0  # repair
        inj.on_step(tid=0, step=2, state=grid)
        assert np.isfinite(grid.df).all()
        assert len(inj.fired_events) == 1


class TestKillWorker:
    def test_raises_only_for_victim(self):
        inj = FaultInjector([Fault(kind="kill_worker", step=7, tid=2)])
        inj.on_step(tid=0, step=7, state=None)
        inj.on_step(tid=2, step=6, state=None)
        with pytest.raises(WorkerKilledError) as exc_info:
            inj.on_step(tid=2, step=7, state=None)
        assert exc_info.value.tid == 2
        assert exc_info.value.step == 7

    def test_once_semantics_under_racing_threads(self):
        inj = FaultInjector([Fault(kind="kill_worker", step=0, tid=0)])
        kills = []
        start = threading.Barrier(8)

        def worker():
            start.wait()
            try:
                inj.on_step(tid=0, step=0, state=None)
            except WorkerKilledError:
                kills.append(1)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(kills) == 1  # exactly one thread was claimed


class TestMessageFaults:
    def test_drop_matches_filters(self):
        inj = FaultInjector([Fault(kind="drop_message", src=0, dst=1, tag=7)])
        assert inj.on_send(src=0, dst=2, tag=7) is None
        assert inj.on_send(src=0, dst=1, tag=8) is None
        assert inj.on_send(src=0, dst=1, tag=7) == "drop"
        # once => the link heals
        assert inj.on_send(src=0, dst=1, tag=7) is None

    def test_wildcards_match_anything(self):
        inj = FaultInjector([Fault(kind="drop_message", once=False)])
        assert inj.on_send(src=3, dst=0, tag=99) == "drop"
        assert inj.on_send(src=0, dst=3, tag=1) == "drop"

    def test_delay_returns_seconds(self):
        inj = FaultInjector([Fault(kind="delay_message", src=1, delay=0.25)])
        assert inj.on_send(src=0, dst=1, tag=0) is None
        assert inj.on_send(src=1, dst=0, tag=0) == 0.25

    def test_repeating_fault_refires(self):
        inj = FaultInjector([Fault(kind="drop_message", tag=5, once=False)])
        assert inj.on_send(0, 1, 5) == "drop"
        assert inj.on_send(1, 0, 5) == "drop"
        assert len(inj.fired_events) == 2


class TestCheckpointFault:
    def test_truncates_tail(self, tmp_path):
        path = tmp_path / "ck.npz"
        path.write_bytes(b"x" * 200)
        inj = FaultInjector([Fault(kind="truncate_checkpoint", step=10, nbytes=64)])
        inj.after_checkpoint(path, step=5)  # too early
        assert path.stat().st_size == 200
        inj.after_checkpoint(path, step=10)
        assert path.stat().st_size == 136

    def test_events_reach_incident_log(self, tmp_path):
        log = IncidentLog()
        path = tmp_path / "ck.npz"
        path.write_bytes(b"x" * 100)
        inj = FaultInjector(
            [Fault(kind="truncate_checkpoint", step=0, nbytes=10)], incident_log=log
        )
        inj.after_checkpoint(path, step=3)
        (event,) = log.events_of("fault_injected")
        assert event.step == 3
        assert event.detail["fault"]["kind"] == "truncate_checkpoint"


class TestIncidentLog:
    def test_json_round_trip(self, tmp_path):
        import json

        log = IncidentLog()
        log.record("fault_injected", step=4, fault={"kind": "kill_worker"})
        log.record("stability_rollback", step=10, attempt=1)
        log.record("stability_rollback", step=10, attempt=2)
        out = tmp_path / "incidents.json"
        log.save(out)
        doc = json.loads(out.read_text())
        assert doc["counts"] == {"fault_injected": 1, "stability_rollback": 2}
        assert [e["seq"] for e in doc["events"]] == [0, 1, 2]
        assert doc["events"][0]["detail"]["fault"]["kind"] == "kill_worker"

    def test_thread_safe_sequencing(self):
        log = IncidentLog()
        threads = [
            threading.Thread(target=lambda: [log.record("tick") for _ in range(100)])
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(log) == 400
        assert [e.seq for e in log.events] == list(range(400))
