"""Chaos harness: seeded fault storms vs. a bit-identical golden run.

The chaos invariant (DESIGN.md §14): under any seeded
:class:`~repro.resilience.faults.FaultPlan`, every submitted job
reaches a terminal state, every completed job's final state is
bit-identical to its fault-free run (``max_abs_delta == 0.0``), and
healthy sibling slots are never perturbed.

``LBMIB_CHAOS_DIR`` (set by the CI chaos job) redirects the harness
workdirs to a stable location so incident journals and resume
manifests survive as forensic artifacts when the invariant breaks.
"""

import os

import pytest

from repro.config import SimulationConfig, StructureConfig
from repro.resilience import ChaosHarness, standard_plan
from repro.resilience.faults import Fault, FaultPlan

pytestmark = pytest.mark.chaos


def _config(**overrides):
    defaults = dict(
        fluid_shape=(8, 8, 8),
        tau=0.8,
        structure=StructureConfig(kind="none"),
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def _fsi_config():
    return _config(
        structure=StructureConfig(kind="flat_sheet", num_fibers=3, nodes_per_fiber=3)
    )


@pytest.fixture
def chaos_dir(request, tmp_path):
    """Per-test workdir, rooted at ``LBMIB_CHAOS_DIR`` when set (CI)."""
    root = os.environ.get("LBMIB_CHAOS_DIR")
    if not root:
        return tmp_path
    path = os.path.join(root, request.node.name.replace("/", "_"))
    os.makedirs(path, exist_ok=True)
    return path


def _harness(workdir, jobs=None, **overrides):
    if jobs is None:
        jobs = [(_config(), 8), (_fsi_config(), 8), (_config(), 8)]
    kwargs = dict(max_batch=2, checkpoint_every=2)
    kwargs.update(overrides)
    return ChaosHarness(jobs, workdir, **kwargs)


class TestStandardPlan:
    def test_standard_storm_preserves_every_job_bit_for_bit(self, chaos_dir):
        report = _harness(chaos_dir).run()
        assert report.mismatches() == []
        assert report.all_terminal
        assert report.all_completed
        assert report.bit_identical
        for verdict in report.verdicts.values():
            assert verdict.max_abs_delta == 0.0
        # The storm actually happened: a kill was survived via resume,
        # faults fired, and the slot-corruption forced a retry.
        assert report.kills_survived == 1
        assert report.resumes == 1
        assert report.incident_counts["fault_injected"] == 3
        assert report.incident_counts.get("job_retry", 0) >= 1

    def test_chaos_is_deterministic_across_replays(self, tmp_path):
        first = _harness(tmp_path / "a").run()
        second = _harness(tmp_path / "b").run()
        assert {k: v.digest for k, v in first.verdicts.items()} == {
            k: v.digest for k, v in second.verdicts.items()
        }
        assert first.kills_survived == second.kills_survived

    def test_summary_is_json_safe(self, tmp_path):
        import json

        report = _harness(tmp_path).run()
        summary = json.loads(json.dumps(report.summary()))
        assert summary["all_terminal"] is True
        assert summary["bit_identical"] is True
        assert summary["kills_survived"] == 1


class TestCustomStorms:
    def test_repeated_kills_survived_by_repeated_resume(self, chaos_dir):
        plan = FaultPlan.of(
            [
                Fault(kind="kill_worker", step=3, tid=0),
                Fault(kind="kill_worker", step=5, tid=1),
                Fault(kind="corrupt_field", step=4, tid=1, fluid_field="df"),
            ],
            seed=7,
        )
        report = _harness(chaos_dir).run(plan)
        assert report.mismatches() == []
        assert report.kills_survived == 2

    def test_truncation_storm_still_completes_losslessly(self, chaos_dir):
        plan = FaultPlan.of(
            [
                Fault(kind="truncate_checkpoint", step=2, nbytes=4096),
                Fault(kind="truncate_checkpoint", step=4, nbytes=4096),
                Fault(kind="corrupt_field", step=5, tid=0, fluid_field="df"),
            ],
            seed=11,
        )
        report = _harness(chaos_dir, keep_checkpoints=4).run(plan)
        assert report.mismatches() == []
        assert report.all_completed and report.bit_identical

    def test_fault_free_plan_is_a_clean_pass(self, tmp_path):
        report = _harness(tmp_path).run(FaultPlan.of([], seed=0))
        assert report.mismatches() == []
        assert report.kills_survived == 0
        assert report.incident_counts.get("fault_injected", 0) == 0


class TestPlanShape:
    def test_standard_plan_is_deterministic_and_complete(self):
        plan = standard_plan(12, checkpoint_every=3, seed=5)
        assert plan == standard_plan(12, checkpoint_every=3, seed=5)
        kinds = sorted(fault.kind for fault in plan)
        assert kinds == ["corrupt_field", "kill_worker", "truncate_checkpoint"]

    def test_harness_rejects_empty_job_list(self, tmp_path):
        with pytest.raises(ValueError):
            ChaosHarness([], tmp_path)
