"""Watchdog tests: every blocking primitive must fail typed, not hang.

These tests deliberately create stalls and dead peers; the ones that
would deadlock on a regression carry ``@pytest.mark.faults`` so the
conftest SIGALRM deadline converts a hang into a failure.
"""

import threading
import time

import pytest

from repro.api import Simulation, SimulationConfig
from repro.distributed.comm import SimulatedComm
from repro.errors import (
    BarrierTimeoutError,
    CommTimeoutError,
    LBMIBError,
    WorkerError,
    WorkerKilledError,
)
from repro.parallel.barrier import InstrumentedBarrier
from repro.parallel.executor import WorkerPool, _primary_error, run_spmd
from repro.resilience import Fault, FaultInjector


class TestInstrumentedBarrier:
    @pytest.mark.faults
    def test_timeout_names_the_missing_thread(self):
        barrier = InstrumentedBarrier(2, name="after_stream")

        def cross_once():
            barrier.wait()

        helper = threading.Thread(target=cross_once, name="peer-thread")
        helper.start()
        barrier.wait()  # full crossing: both names enter the roster
        helper.join()

        with pytest.raises(BarrierTimeoutError) as exc_info:
            barrier.wait(timeout=0.2)  # peer never comes back
        err = exc_info.value
        assert err.name == "after_stream"
        assert "peer-thread" in err.missing
        assert "after_stream" in str(err)
        assert "never arrived" in str(err)

    def test_typed_error_is_both_lbmib_and_timeout(self):
        barrier = InstrumentedBarrier(2)
        with pytest.raises(LBMIBError):
            barrier.wait(timeout=0.05)
        barrier.reset()
        with pytest.raises(TimeoutError):
            barrier.wait(timeout=0.05)

    @pytest.mark.faults
    def test_abort_releases_waiters_immediately(self):
        barrier = InstrumentedBarrier(2, timeout=30.0)
        failures = []

        def waiter():
            try:
                barrier.wait()
            except BarrierTimeoutError as exc:
                failures.append(exc)

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.05)
        start = time.perf_counter()
        barrier.abort()
        t.join(timeout=5.0)
        assert not t.is_alive()
        assert time.perf_counter() - start < 5.0  # not the 30 s deadline
        assert barrier.aborted
        assert len(failures) == 1

    def test_reset_restores_an_aborted_barrier(self):
        barrier = InstrumentedBarrier(1)
        barrier.abort()
        with pytest.raises(BarrierTimeoutError):
            barrier.wait(timeout=0.05)
        barrier.reset()
        assert not barrier.aborted
        barrier.wait()  # parties=1: crosses immediately
        assert barrier.stats.crossings == 1


class TestWorkerPool:
    def test_worker_exception_is_typed_and_attributed(self):
        with WorkerPool(3) as pool:
            def boom(tid):
                if tid == 1:
                    raise ValueError("kernel exploded")

            with pytest.raises(WorkerError) as exc_info:
                pool.dispatch(boom)
            assert exc_info.value.tid == 1
            assert isinstance(exc_info.value.original, ValueError)

    def test_pool_survives_worker_exception(self):
        """A failed region must not strand the next dispatch (the old
        implementation left ``_task`` set and errors queued)."""
        with WorkerPool(3) as pool:
            def boom(tid):
                raise RuntimeError("die")

            with pytest.raises(WorkerError):
                pool.dispatch(boom)

            hits = []
            lock = threading.Lock()

            def fine(tid):
                with lock:
                    hits.append(tid)

            pool.dispatch(fine)  # must not re-raise the stale error
            assert sorted(hits) == [0, 1, 2]
            assert not pool.broken

    @pytest.mark.faults
    def test_timeout_breaks_the_pool(self):
        release = threading.Event()
        pool = WorkerPool(2)
        try:
            def wedge(tid):
                if tid == 0:
                    release.wait(10.0)

            with pytest.raises(BarrierTimeoutError) as exc_info:
                pool.dispatch(wedge, timeout=0.3)
            assert "worker pool" in str(exc_info.value)
            assert pool.broken
            with pytest.raises(RuntimeError, match="broken"):
                pool.dispatch(lambda tid: None)
        finally:
            release.set()
            pool.shutdown()

    def test_primary_error_prefers_root_cause(self):
        collateral = WorkerError(0, BarrierTimeoutError("b", 1.0))
        root = WorkerError(2, WorkerKilledError(2, 7))
        assert _primary_error([collateral, root]) is root
        assert _primary_error([collateral]) is collateral


class TestRunSpmd:
    def test_worker_exception_propagates(self):
        def entry(tid):
            if tid == 2:
                raise KeyError("broken thread")

        with pytest.raises(WorkerError) as exc_info:
            run_spmd(4, entry)
        assert exc_info.value.tid == 2

    @pytest.mark.faults
    def test_join_timeout_names_stalled_threads(self):
        release = threading.Event()

        def entry(tid):
            if tid == 1:
                release.wait(10.0)

        try:
            with pytest.raises(BarrierTimeoutError) as exc_info:
                run_spmd(3, entry, timeout=0.3)
            err = exc_info.value
            assert "lbmib-worker-1" in err.missing
            assert "lbmib-worker-0" in err.arrived
        finally:
            release.set()


class TestCommWatchdog:
    def test_recv_timeout_carries_rank_src_tag(self):
        comm = SimulatedComm(2)
        rank0 = comm.rank_comm(0)
        with pytest.raises(CommTimeoutError) as exc_info:
            rank0.recv(src=1, tag=42, timeout=0.1)
        err = exc_info.value
        assert err.rank == 0
        assert err.src == 1
        assert err.tag == 42
        assert isinstance(err, LBMIBError)
        assert isinstance(err, TimeoutError)
        assert "tag 42" in str(err)

    def test_barrier_timeout_names_missing_ranks(self):
        comm = SimulatedComm(2)
        with pytest.raises(CommTimeoutError) as exc_info:
            comm.rank_comm(0).barrier(timeout=0.2)
        err = exc_info.value
        assert err.missing == [1]
        assert "never arrived" in str(err)

    def test_allreduce_inherits_the_deadline(self):
        comm = SimulatedComm(2)
        with pytest.raises(CommTimeoutError):
            comm.rank_comm(0).allreduce_sum([1.0], timeout=0.2)

    @pytest.mark.faults
    def test_dropped_message_surfaces_as_recv_timeout(self):
        """The full path: injector swallows the send, the watchdog turns
        the orphaned recv into a typed timeout."""
        import numpy as np

        injector = FaultInjector([Fault(kind="drop_message", src=0, dst=1, tag=3)])
        comm = SimulatedComm(2, timeout=0.3, fault_injector=injector)
        comm.rank_comm(0).send(dst=1, tag=3, array=np.ones(4))
        assert comm.stats[0].messages_dropped == 1
        assert comm.stats[0].messages_sent == 0
        with pytest.raises(CommTimeoutError) as exc_info:
            comm.rank_comm(1).recv(src=0, tag=3)
        assert exc_info.value.op == "recv"

    def test_delayed_message_still_arrives(self):
        import numpy as np

        injector = FaultInjector([Fault(kind="delay_message", delay=0.05)])
        comm = SimulatedComm(2, fault_injector=injector)
        start = time.perf_counter()
        comm.rank_comm(0).send(dst=1, tag=0, array=np.arange(3.0))
        assert time.perf_counter() - start >= 0.05
        out = comm.rank_comm(1).recv(src=0, tag=0, timeout=1.0)
        np.testing.assert_array_equal(out, np.arange(3.0))


class TestSolverFastFail:
    """A dying worker must surface as an exception, never a hang."""

    @pytest.mark.faults
    def test_cube_solver_worker_death_fails_fast(self):
        injector = FaultInjector([Fault(kind="kill_worker", step=2, tid=1)])
        config = SimulationConfig(
            fluid_shape=(8, 8, 8),
            solver="cube",
            num_threads=2,
            cube_size=4,
            barrier_timeout=10.0,
        )
        sim = Simulation(config, fault_injector=injector)
        start = time.perf_counter()
        with pytest.raises(WorkerError) as exc_info:
            sim.run(5)
        # peers were aborted, not waited out: well under the 10 s deadline
        assert time.perf_counter() - start < 8.0
        root = exc_info.value
        while isinstance(root, WorkerError):
            root = root.original
        assert isinstance(root, WorkerKilledError)

    @pytest.mark.faults
    def test_openmp_solver_worker_death_is_typed(self):
        injector = FaultInjector([Fault(kind="kill_worker", step=1, tid=0)])
        config = SimulationConfig(
            fluid_shape=(8, 8, 8),
            solver="openmp",
            num_threads=2,
            barrier_timeout=10.0,
        )
        sim = Simulation(config, fault_injector=injector)
        with pytest.raises(WorkerError) as exc_info:
            sim.run(5)
        sim.close()
        root = exc_info.value
        while isinstance(root, WorkerError):
            root = root.original
        assert isinstance(root, WorkerKilledError)
