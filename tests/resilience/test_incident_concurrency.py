"""IncidentLog under concurrent writers: the journal stays consistent.

Worker threads, watchdogs, and the fault injector all record into one
log while the solver runs; the journal must never lose, duplicate, or
misnumber an event under that contention.
"""

import json
import threading

import pytest

from repro.resilience import IncidentLog

NUM_THREADS = 8
PER_THREAD = 200


def _hammer(log, barrier):
    def writer(tid):
        barrier.wait()
        for i in range(PER_THREAD):
            log.record("worker_event", step=i, tid=tid, payload=i * tid)

    threads = [
        threading.Thread(target=writer, args=(tid,)) for tid in range(NUM_THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestConcurrentWriters:
    def test_no_events_lost(self):
        log = IncidentLog()
        _hammer(log, threading.Barrier(NUM_THREADS))
        assert len(log) == NUM_THREADS * PER_THREAD
        assert log.count("worker_event") == NUM_THREADS * PER_THREAD

    def test_seq_numbers_unique_and_contiguous(self):
        log = IncidentLog()
        _hammer(log, threading.Barrier(NUM_THREADS))
        seqs = [e.seq for e in log.events]
        assert sorted(seqs) == list(range(NUM_THREADS * PER_THREAD))

    def test_each_writer_sees_its_own_events_in_order(self):
        log = IncidentLog()
        _hammer(log, threading.Barrier(NUM_THREADS))
        for tid in range(NUM_THREADS):
            mine = [e for e in log.events if e.detail["tid"] == tid]
            assert [e.step for e in mine] == list(range(PER_THREAD))

    def test_snapshot_while_writing_is_a_consistent_prefix(self):
        log = IncidentLog()
        barrier = threading.Barrier(NUM_THREADS + 1)
        snapshots = []

        def reader():
            barrier.wait()
            for _ in range(50):
                events = log.events
                snapshots.append([e.seq for e in events])

        t = threading.Thread(target=reader)
        t.start()
        _hammer(log, barrier)
        t.join()
        for seqs in snapshots:
            assert seqs == list(range(len(seqs)))  # prefix, in order

    def test_to_json_round_trips_under_load(self):
        log = IncidentLog()
        _hammer(log, threading.Barrier(NUM_THREADS))
        doc = json.loads(log.to_json())
        assert doc["counts"]["worker_event"] == NUM_THREADS * PER_THREAD
        assert len(doc["events"]) == NUM_THREADS * PER_THREAD

    def test_concurrent_mixed_kinds_counted_exactly(self):
        log = IncidentLog()
        kinds = ["rollback", "retry", "restored", "fault_injected"]
        barrier = threading.Barrier(len(kinds))

        def writer(kind):
            barrier.wait()
            for i in range(PER_THREAD):
                log.record(kind, step=i)

        threads = [threading.Thread(target=writer, args=(k,)) for k in kinds]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert log.counts() == {k: PER_THREAD for k in kinds}
