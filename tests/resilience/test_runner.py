"""End-to-end recovery tests: the ResilientRunner acceptance scenarios.

Each test injects a planned fault and requires the run to *complete* at
the target step with the right incident trail — rollback + damped
retry for instability, sequential fallback for worker death, older
checkpoint for a corrupted file.
"""

import json
import os

import numpy as np
import pytest

from repro.api import Simulation, SimulationConfig
from repro.config import StructureConfig
from repro.errors import StabilityError
from repro.resilience import Fault, FaultInjector, FaultPlan, ResilientRunner, RetryPolicy

#: Small, fast problem used by every scenario.
_STRUCTURE = StructureConfig(num_fibers=5, nodes_per_fiber=5)


def _config(**overrides):
    base = dict(fluid_shape=(8, 8, 8), structure=_STRUCTURE, solver="sequential")
    base.update(overrides)
    return SimulationConfig(**base)


class TestRetryPolicy:
    @pytest.mark.parametrize(
        "bad",
        [
            dict(checkpoint_every=0),
            dict(max_rollbacks=-1),
            dict(tau_damping=0.9),
            dict(dt_damping=0.0),
            dict(dt_damping=1.5),
            dict(keep_checkpoints=0),
        ],
    )
    def test_rejects_bad_knobs(self, bad):
        with pytest.raises(ValueError):
            RetryPolicy(**bad)

    def test_watchdog_timeout_installed_into_config(self, tmp_path):
        runner = ResilientRunner(
            _config(), tmp_path, policy=RetryPolicy(watchdog_timeout=5.0)
        )
        assert runner.config.barrier_timeout == 5.0

    def test_explicit_config_timeout_wins(self, tmp_path):
        runner = ResilientRunner(
            _config(barrier_timeout=2.0),
            tmp_path,
            policy=RetryPolicy(watchdog_timeout=5.0),
        )
        assert runner.config.barrier_timeout == 2.0


class TestStabilityRollback:
    """Acceptance: seeded NaN blow-up -> rollback, damped retry, finish."""

    @pytest.mark.faults
    def test_nan_injection_recovers_with_one_rollback(self, tmp_path):
        plan = FaultPlan.of(
            [Fault(kind="corrupt_field", step=12, tid=0, count=8)], seed=1
        )
        runner = ResilientRunner(
            _config(),
            tmp_path,
            policy=RetryPolicy(checkpoint_every=10, max_rollbacks=3),
            fault_injector=FaultInjector(plan),
        )
        sim = runner.run(25)

        assert sim.time_step == 25
        sim.fluid.validate_stable()  # the final state is healthy
        log = runner.incidents
        assert log.count("fault_injected") == 1
        assert log.count("stability_rollback") == 1  # exactly one
        assert log.count("run_completed") == 1
        # the retry raised tau (higher viscosity damps the blow-up)
        (retry,) = log.events_of("retry_dampened")
        assert retry.detail["tau"] > _config().effective_tau
        # rolled back to the step-10 checkpoint, not to scratch
        (restored,) = log.events_of("restored")
        assert restored.step == 10
        sim.close()

    @pytest.mark.faults
    def test_rollback_budget_exhaustion_reraises(self, tmp_path):
        # once=False: the blow-up re-fires on every replay, so damping
        # can never save the run and the budget must bound the retries.
        plan = FaultPlan.of(
            [Fault(kind="corrupt_field", step=2, tid=0, once=False)], seed=2
        )
        runner = ResilientRunner(
            _config(),
            tmp_path,
            policy=RetryPolicy(checkpoint_every=5, max_rollbacks=1),
            fault_injector=FaultInjector(plan),
        )
        with pytest.raises(StabilityError):
            runner.run(10)
        log = runner.incidents
        assert log.count("stability_rollback") == 2  # initial + 1 retry
        assert log.count("gave_up") == 1
        assert log.count("run_completed") == 0


class TestWorkerDeathFallback:
    """Acceptance: a killed cube-solver worker -> sequential fallback."""

    @pytest.mark.faults
    def test_cube_worker_kill_completes_sequentially(self, tmp_path):
        plan = FaultPlan.of([Fault(kind="kill_worker", step=7, tid=1)])
        runner = ResilientRunner(
            _config(solver="cube", num_threads=2, cube_size=4),
            tmp_path,
            policy=RetryPolicy(checkpoint_every=5, watchdog_timeout=15.0),
            fault_injector=FaultInjector(plan),
        )
        sim = runner.run(15)

        assert sim.time_step == 15
        assert sim.config.solver == "sequential"  # rebuilt on the fallback
        log = runner.incidents
        assert log.count("worker_failure") == 1
        assert log.count("fallback_sequential") == 1
        assert log.count("stability_rollback") == 0
        # resumed from the step-5 checkpoint, not from scratch
        (restored,) = log.events_of("restored")
        assert restored.step == 5
        sim.fluid.validate_stable()
        sim.close()

    @pytest.mark.faults
    def test_openmp_worker_kill_falls_back(self, tmp_path):
        plan = FaultPlan.of([Fault(kind="kill_worker", step=3, tid=1)])
        runner = ResilientRunner(
            _config(solver="openmp", num_threads=2),
            tmp_path,
            policy=RetryPolicy(checkpoint_every=5, watchdog_timeout=15.0),
            fault_injector=FaultInjector(plan),
        )
        sim = runner.run(10)
        assert sim.time_step == 10
        assert runner.incidents.count("fallback_sequential") == 1
        sim.close()


class TestCheckpointCorruption:
    """Acceptance: a truncated checkpoint is skipped for an older one."""

    @pytest.mark.faults
    def test_truncated_checkpoint_falls_back_to_older(self, tmp_path):
        plan = FaultPlan.of(
            [
                # chop the tail off the step-10 checkpoint...
                Fault(kind="truncate_checkpoint", step=10, nbytes=4096),
                # ...then blow up so the runner has to restore
                Fault(kind="corrupt_field", step=12, tid=0),
            ],
            seed=3,
        )
        runner = ResilientRunner(
            _config(),
            tmp_path,
            policy=RetryPolicy(checkpoint_every=5, keep_checkpoints=3),
            fault_injector=FaultInjector(plan),
        )
        sim = runner.run(15)

        assert sim.time_step == 15
        log = runner.incidents
        assert log.count("checkpoint_corrupt") == 1
        (corrupt,) = log.events_of("checkpoint_corrupt")
        assert corrupt.step == 10  # the attacked file was rejected
        (restored,) = log.events_of("restored")
        assert restored.step == 5  # the older checkpoint won
        sim.close()


class TestIncidentPersistence:
    @pytest.mark.faults
    def test_incident_journal_written_to_workdir(self, tmp_path):
        plan = FaultPlan.of([Fault(kind="corrupt_field", step=3, tid=0)])
        runner = ResilientRunner(
            _config(),
            tmp_path,
            policy=RetryPolicy(checkpoint_every=5),
            fault_injector=FaultInjector(plan),
        )
        runner.run(10).close()

        doc = json.loads((tmp_path / "incidents.json").read_text())
        kinds = [e["kind"] for e in doc["events"]]
        assert kinds[0] == "run_started"
        assert kinds[-1] == "run_completed"
        assert "fault_injected" in kinds
        assert "stability_rollback" in kinds
        assert doc["counts"]["stability_rollback"] == 1

    def test_checkpoint_rotation_bounds_disk(self, tmp_path):
        runner = ResilientRunner(
            _config(), tmp_path, policy=RetryPolicy(checkpoint_every=2, keep_checkpoints=2)
        )
        runner.run(10).close()
        ckpts = sorted(p for p in os.listdir(tmp_path) if p.startswith("ckpt-"))
        assert ckpts == ["ckpt-00000008.npz", "ckpt-00000010.npz"]


class TestCrossVariantRestore:
    """A checkpoint written by one solver variant restores into another."""

    @pytest.mark.faults
    def test_cube_checkpoint_restores_into_sequential(self, tmp_path):
        cube_cfg = _config(solver="cube", num_threads=2, cube_size=4)
        path = tmp_path / "cross.npz"
        with Simulation(cube_cfg) as sim:
            sim.run(4)
            snapshot = sim.fluid  # gathered global layout
            positions = sim.structure.sheets[0].positions.copy()
            sim.checkpoint(path)

        restored = Simulation.from_checkpoint(path, _config())
        assert restored.time_step == 4
        assert restored.fluid.state_allclose(snapshot, rtol=0, atol=0)
        np.testing.assert_array_equal(
            restored.structure.sheets[0].positions, positions
        )
        restored.run(3)  # continues without error on the other variant
        assert restored.time_step == 7
        restored.fluid.validate_stable()
        restored.close()

    def test_restore_under_damped_config_uses_new_tau(self, tmp_path):
        path = tmp_path / "ck.npz"
        with Simulation(_config()) as sim:
            sim.run(2)
            sim.checkpoint(path)
        damped = _config(tau=1.1)
        restored = Simulation.from_checkpoint(path, damped)
        assert restored.fluid.tau == pytest.approx(1.1)
        restored.close()
