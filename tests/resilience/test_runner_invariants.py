"""ResilientRunner + invariant suite: rollback preserves the physics.

The acceptance story for wiring verification into resilience: a fault
corrupts the state, the per-step invariant check converts it into a
typed ``InvariantError`` at the first bad step, the runner rolls back
to the last good checkpoint and retries with damped tau — and the
invariant suite, rebound to the restored state, passes on every step
of the retried run.
"""

import pytest

from repro.api import SimulationConfig
from repro.config import StructureConfig
from repro.errors import InvariantError
from repro.resilience import Fault, FaultInjector, FaultPlan, ResilientRunner, RetryPolicy
from repro.verify import InvariantSuite

pytestmark = [pytest.mark.faults, pytest.mark.verify]


def _config(**overrides):
    base = dict(
        fluid_shape=(8, 8, 8),
        structure=StructureConfig(num_fibers=4, nodes_per_fiber=4),
        solver="sequential",
    )
    base.update(overrides)
    return SimulationConfig(**base)


class TestRollbackPreservesInvariants:
    def test_corruption_rolls_back_and_retried_run_passes_checks(self, tmp_path):
        config = _config()
        suite = InvariantSuite.default(config)
        plan = FaultPlan.of(
            [Fault(kind="corrupt_field", step=7, tid=0, count=4)], seed=5
        )
        runner = ResilientRunner(
            config,
            tmp_path,
            policy=RetryPolicy(checkpoint_every=5, max_rollbacks=3),
            fault_injector=FaultInjector(plan),
            invariants=suite,
        )
        sim = runner.run(12)
        try:
            assert sim.time_step == 12
            sim.fluid.validate_stable()
            # the violation was caught as a typed invariant failure and
            # handled exactly like a stability blow-up
            log = runner.incidents
            assert log.count("stability_rollback") == 1
            assert log.count("run_completed") == 1
            (restored,) = log.events_of("restored")
            assert restored.step == 5
            (retry,) = log.events_of("retry_dampened")
            assert retry.detail["tau"] > config.effective_tau
            # the rebound suite checked every step of the retried run
            assert sim.invariants is suite
            assert suite.checks_passed > 0
            suite.check_simulation(sim)  # final state still clean
        finally:
            sim.close()

    def test_persistent_violation_exhausts_budget_and_raises(self, tmp_path):
        config = _config()
        plan = FaultPlan.of(
            [Fault(kind="corrupt_field", step=2, tid=0, once=False)], seed=6
        )
        runner = ResilientRunner(
            config,
            tmp_path,
            policy=RetryPolicy(checkpoint_every=5, max_rollbacks=1),
            fault_injector=FaultInjector(plan),
            invariants=InvariantSuite.default(config),
        )
        with pytest.raises(InvariantError):
            runner.run(10)
        assert runner.incidents.count("gave_up") == 1

    def test_cube_solver_rollback_with_invariants(self, tmp_path):
        """Same story on the cube solver: the worker sentinel raises,
        the pool surfaces the typed error, the runner recovers."""
        config = _config(solver="cube", num_threads=2, cube_size=4)
        suite = InvariantSuite.default(config)
        plan = FaultPlan.of(
            [Fault(kind="corrupt_field", step=7, tid=0, count=4)], seed=7
        )
        runner = ResilientRunner(
            config,
            tmp_path,
            policy=RetryPolicy(checkpoint_every=5, max_rollbacks=3),
            fault_injector=FaultInjector(plan),
            invariants=suite,
        )
        sim = runner.run(10)
        try:
            assert sim.time_step == 10
            assert runner.incidents.count("stability_rollback") >= 1
            assert runner.incidents.count("run_completed") == 1
            suite.check_simulation(sim)
        finally:
            sim.close()
