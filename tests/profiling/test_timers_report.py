"""Tests of the timing utilities and table rendering."""

import time

import pytest

from repro.profiling.report import format_percent, format_seconds, render_table
from repro.profiling.timers import Stopwatch, Timer


class TestStopwatch:
    def test_accumulates_episodes(self):
        sw = Stopwatch()
        sw.start()
        time.sleep(0.01)
        first = sw.stop()
        sw.start()
        sw.stop()
        assert sw.elapsed >= first

    def test_double_start_rejected(self):
        sw = Stopwatch()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.start()
        sw.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        sw = Stopwatch()
        sw.start()
        sw.stop()
        sw.reset()
        assert sw.elapsed == 0.0

    def test_reset_while_running_rejected(self):
        sw = Stopwatch()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.reset()
        sw.stop()


class TestTimer:
    def test_measures_block(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009


class TestRenderTable:
    def test_basic_table(self):
        text = render_table(["A", "B"], [["x", 1], ["yy", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("A")
        assert "-" in lines[1]
        assert "yy" in lines[3]

    def test_title(self):
        text = render_table(["A"], [["1"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_numeric_columns_right_aligned(self):
        text = render_table(["N"], [["5"], ["5000"]])
        rows = text.splitlines()[2:]
        assert rows[0].endswith("5")
        assert rows[1].endswith("5000")

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            render_table(["A", "B"], [["only one"]])

    def test_float_formatting(self):
        text = render_table(["V"], [[1.23456789]])
        assert "1.235" in text

    def test_empty_rows_ok(self):
        text = render_table(["A"], [])
        assert "A" in text


class TestFormatters:
    def test_format_seconds_ranges(self):
        assert "us" in format_seconds(5e-6)
        assert "ms" in format_seconds(5e-3)
        assert format_seconds(2.0) == "2.00 s"

    def test_format_percent(self):
        assert format_percent(0.375) == "37.50%"
