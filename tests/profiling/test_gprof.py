"""Tests of the gprof-style flat profiler."""

import pytest

from repro.profiling.gprof import FlatProfile


class TestFlatProfile:
    def test_accumulates_seconds_and_calls(self):
        p = FlatProfile()
        p("compute_fluid_collision", 0.5)
        p("compute_fluid_collision", 0.25)
        p("move_fibers", 0.25)
        assert p.seconds["compute_fluid_collision"] == pytest.approx(0.75)
        assert p.calls["compute_fluid_collision"] == 2
        assert p.total_seconds == pytest.approx(1.0)

    def test_percentages_sorted_descending(self):
        p = FlatProfile()
        p("move_fibers", 1.0)
        p("compute_fluid_collision", 3.0)
        pct = p.percentages()
        assert list(pct) == ["compute_fluid_collision", "move_fibers"]
        assert pct["compute_fluid_collision"] == pytest.approx(75.0)

    def test_empty_profile(self):
        assert FlatProfile().percentages() == {}
        assert FlatProfile().total_seconds == 0

    def test_kernel_index_matches_algorithm1(self):
        p = FlatProfile()
        assert p.kernel_index("compute_bending_force_in_fibers") == 1
        assert p.kernel_index("compute_fluid_collision") == 5
        assert p.kernel_index("copy_fluid_velocity_distribution") == 9

    def test_table_rendering(self):
        p = FlatProfile()
        p("compute_fluid_collision", 0.9)
        p("move_fibers", 0.1)
        table = p.as_table()
        assert "compute_fluid_collision" in table
        assert "90.00%" in table
        assert "Total" in table

    def test_reset(self):
        p = FlatProfile()
        p("move_fibers", 1.0)
        p.reset()
        assert p.total_seconds == 0

    def test_integrates_with_solver(self):
        from repro.core.ib import geometry
        from repro.core.lbm.fields import FluidGrid
        from repro.core.solver import SequentialLBMIBSolver

        grid = FluidGrid((8, 8, 8), tau=0.8)
        structure = geometry.flat_sheet((8, 8, 8), num_fibers=3, nodes_per_fiber=3)
        profile = FlatProfile()
        SequentialLBMIBSolver(grid, structure, kernel_timer=profile).run(3)
        assert len(profile.seconds) == 9
        assert all(c == 3 for c in profile.calls.values())
        assert abs(sum(profile.percentages().values()) - 100.0) < 1e-9
