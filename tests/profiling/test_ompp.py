"""Tests of the OmpP-style parallel profiler."""

import pytest

from repro.parallel.barrier import InstrumentedBarrier
from repro.parallel.trace import ExecutionTrace
from repro.profiling.ompp import ParallelProfile


def _trace():
    t = ExecutionTrace(num_threads=2)
    t.record(0, "collision", 0, 1.0, 100)
    t.record(0, "collision", 1, 0.5, 50)
    t.record(0, "stream", 0, 0.2, 100)
    t.record(0, "stream", 1, 0.2, 100)
    return t


class TestRegionStats:
    def test_per_region_aggregation(self):
        p = ParallelProfile(_trace())
        stats = {s.name: s for s in p.region_stats()}
        assert stats["collision"].total_seconds == pytest.approx(1.5)
        assert stats["collision"].mean_thread_seconds == pytest.approx(0.75)
        assert stats["collision"].max_thread_seconds == pytest.approx(1.0)

    def test_region_imbalance(self):
        p = ParallelProfile(_trace())
        stats = {s.name: s for s in p.region_stats()}
        assert stats["collision"].imbalance == pytest.approx(0.25)
        assert stats["stream"].imbalance == pytest.approx(0.0)

    def test_sorted_by_total_time(self):
        p = ParallelProfile(_trace())
        names = [s.name for s in p.region_stats()]
        assert names == ["collision", "stream"]


class TestWholeProgram:
    def test_time_imbalance(self):
        p = ParallelProfile(_trace())
        # thread 0: 1.2s, thread 1: 0.7s -> (1.2 - 0.95)/1.2
        assert p.whole_program_imbalance() == pytest.approx((1.2 - 0.95) / 1.2)

    def test_work_imbalance(self):
        p = ParallelProfile(_trace())
        # thread 0: 200 items, thread 1: 150 -> (200 - 175)/200
        assert p.whole_program_imbalance(by="work") == pytest.approx(0.125)

    def test_balanced_trace(self):
        t = ExecutionTrace(2)
        t.record(0, "k", 0, 1.0, 10)
        t.record(0, "k", 1, 1.0, 10)
        assert ParallelProfile(t).whole_program_imbalance() == 0.0

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            ParallelProfile(_trace()).whole_program_imbalance(by="luck")

    def test_empty_trace(self):
        p = ParallelProfile(ExecutionTrace(4))
        assert p.whole_program_imbalance() == 0.0
        assert p.region_stats() == []


class TestBarriers:
    def test_barrier_wait_seconds(self):
        barrier = InstrumentedBarrier(1, "b")
        barrier.wait()
        p = ParallelProfile(_trace(), barriers={"b": barrier})
        assert p.barrier_wait_seconds() >= 0.0

    def test_table_rendering(self):
        p = ParallelProfile(_trace())
        text = p.as_table()
        assert "collision" in text
        assert "whole-program load imbalance" in text
