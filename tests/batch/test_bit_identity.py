"""Every batch slot is bit-identical to its solo sequential run.

The batched kernels are operation-for-operation mirrors of the solo
ones (elementwise ufuncs, the direction-axis reduction and the stacked
matmul are all bit-identical across the extra batch axis), so batching
is a pure throughput transformation: ``np.array_equal``, not a
tolerance, is the assertion here — the same standard the fused variant
is held to.
"""

import numpy as np
import pytest

from repro.api import Simulation
from repro.batch import BatchedFluidGrid, BatchedLBMIBSolver
from repro.config import BoundaryConfig, SimulationConfig, StructureConfig
from repro.verify.oracle import _seeded_initial_fluid

pytestmark = pytest.mark.verify

_FIELDS = ("df", "density", "velocity", "velocity_shifted", "force")


def _config(operator="bgk", structure_kind="flat_sheet", **overrides):
    structure = (
        StructureConfig(kind="flat_sheet", num_fibers=3, nodes_per_fiber=3)
        if structure_kind == "flat_sheet"
        else StructureConfig(kind="none")
    )
    defaults = dict(
        fluid_shape=(8, 8, 8),
        tau=0.8,
        collision_operator=operator,
        structure=structure,
        external_force=(1e-5, 0.0, 0.0),
        boundaries=(
            BoundaryConfig("bounce_back", "z", "high", wall_velocity=(0.02, 0.0, 0.0)),
            BoundaryConfig("bounce_back", "z", "low"),
            BoundaryConfig("outflow", "x", "high"),
        ),
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def _solo_run(config, fluid, structure, steps):
    with Simulation(
        config,
        initial_fluid=fluid.copy(),
        initial_structure=structure.copy() if structure is not None else None,
    ) as sim:
        sim.run(steps)
        state = {name: np.array(getattr(sim.fluid, name)) for name in _FIELDS}
        if sim.structure is not None:
            for si, sheet in enumerate(sim.structure.sheets):
                state[f"sheet{si}.positions"] = np.array(sheet.positions)
                state[f"sheet{si}.velocity"] = np.array(sheet.velocity)
    return state


@pytest.mark.parametrize("operator", ["bgk", "trt"])
def test_mixed_batch_matches_solo_sequential(operator):
    """A 3-slot batch — two FSI slots with different initial fluids and
    one fluid-only slot — under walls, outflow and a body force: every
    slot's final state equals its solo sequential run exactly."""
    config = _config(operator=operator)
    steps = 6
    structures = [config.build_structure(), None, config.build_structure()]
    fluids = [_seeded_initial_fluid(config, seed) for seed in (11, 12, 13)]

    grid = BatchedFluidGrid(
        config.fluid_shape,
        3,
        tau=config.effective_tau,
        collision_operator=config.collision_operator,
    )
    solver = BatchedLBMIBSolver(
        grid,
        delta=config.build_delta(),
        boundaries=config.build_boundaries(),
        dt=config.dt,
        external_force=config.external_force,
    )
    for slot in range(3):
        solver.load_slot(
            slot,
            fluids[slot],
            structures[slot].copy() if structures[slot] is not None else None,
        )
    solver.run(steps)

    for slot in range(3):
        expected = _solo_run(config, fluids[slot], structures[slot], steps)
        view = grid.view(slot)
        for name in _FIELDS:
            assert np.array_equal(getattr(view, name), expected[name]), (
                f"slot {slot} field {name} differs from solo sequential"
            )
        structure = solver.structures[slot]
        if structure is not None:
            for si, sheet in enumerate(structure.sheets):
                assert np.array_equal(sheet.positions, expected[f"sheet{si}.positions"])
                assert np.array_equal(sheet.velocity, expected[f"sheet{si}.velocity"])


def test_result_independent_of_batch_composition():
    """The same simulation run in a batch of 1 and in a batch of 4
    (with three unrelated neighbours) produces bit-identical state —
    slots never interact."""
    config = _config(operator="bgk")
    fluid = _seeded_initial_fluid(config, 21)
    steps = 5

    def run_in_batch(batch, slot):
        grid = BatchedFluidGrid(
            config.fluid_shape, batch, tau=config.effective_tau
        )
        solver = BatchedLBMIBSolver(
            grid,
            delta=config.build_delta(),
            boundaries=config.build_boundaries(),
            dt=config.dt,
            external_force=config.external_force,
        )
        for s in range(batch):
            solver.load_slot(
                s,
                fluid if s == slot else _seeded_initial_fluid(config, 100 + s),
                config.build_structure(),
            )
        solver.run(steps)
        return grid.gather_slot(slot)

    alone = run_in_batch(1, 0)
    crowded = run_in_batch(4, 2)
    for name in _FIELDS:
        assert np.array_equal(getattr(alone, name), getattr(crowded, name)), name


def test_nan_in_one_slot_never_crosses_the_batch_axis():
    """Streaming is per-slot periodic: a diverged (all-NaN) slot leaves
    its neighbours' trajectories bit-identical."""
    config = _config(structure_kind="none")
    healthy = _seeded_initial_fluid(config, 31)
    poisoned = _seeded_initial_fluid(config, 32)
    poisoned.df[...] = np.nan
    steps = 4

    grid = BatchedFluidGrid(config.fluid_shape, 2, tau=config.effective_tau)
    solver = BatchedLBMIBSolver(
        grid,
        delta=config.build_delta(),
        boundaries=config.build_boundaries(),
        dt=config.dt,
        external_force=config.external_force,
    )
    solver.load_slot(0, healthy)
    solver.load_slot(1, poisoned)
    solver.run(steps)

    assert not grid.slot_finite(1)
    expected = _solo_run(config, healthy, None, steps)
    view = grid.view(0)
    for name in _FIELDS:
        assert np.array_equal(getattr(view, name), expected[name]), name
