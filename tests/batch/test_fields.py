"""BatchedFluidGrid: layout, live slot views, and slot lifecycle."""

import numpy as np
import pytest

from repro.batch import BatchedFluidGrid, BatchSlotView
from repro.constants import Q, RHO0
from repro.core.lbm.fields import FluidGrid
from repro.errors import ConfigurationError


def _seeded_fluid(shape=(6, 5, 4), tau=0.8, seed=0, operator="bgk"):
    fluid = FluidGrid(shape, tau=tau, collision_operator=operator)
    rng = np.random.default_rng(seed)
    fluid.initialize_equilibrium(
        density=1.0 + 0.01 * rng.standard_normal(shape),
        velocity=0.01 * rng.standard_normal((3,) + shape),
    )
    return fluid


class TestConstruction:
    def test_shapes_and_equilibrium_start(self):
        grid = BatchedFluidGrid((6, 5, 4), 3, tau=0.8)
        assert grid.df.shape == (3, Q, 6, 5, 4)
        assert grid.df_new.shape == (3, Q, 6, 5, 4)
        assert grid.density.shape == (3, 6, 5, 4)
        assert grid.velocity.shape == (3, 3, 6, 5, 4)
        # Every slot starts at the same quiescent equilibrium.
        assert np.array_equal(grid.df[1], grid.df[0])
        assert np.array_equal(grid.df[2], grid.df[0])
        assert np.all(grid.density == RHO0)
        # A slot is laid out exactly like a solo grid.
        solo = FluidGrid((6, 5, 4), tau=0.8)
        assert np.array_equal(grid.df[1], solo.df)

    def test_slot_subarrays_are_contiguous(self):
        grid = BatchedFluidGrid((6, 5, 4), 2)
        assert grid.df[1].flags.c_contiguous
        assert grid.density[0].flags.c_contiguous

    def test_invalid_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchedFluidGrid((6, 5, 4), 0)

    def test_tau_odd_matches_solo(self):
        for operator in ("bgk", "trt"):
            grid = BatchedFluidGrid((6, 5, 4), 2, tau=0.8, collision_operator=operator)
            solo = FluidGrid((6, 5, 4), tau=0.8, collision_operator=operator)
            assert grid.tau_odd == solo.tau_odd


class TestSlotViews:
    def test_view_is_a_fluid_grid(self):
        grid = BatchedFluidGrid((6, 5, 4), 2, tau=0.8)
        view = grid.view(1)
        assert isinstance(view, BatchSlotView)
        assert isinstance(view, FluidGrid)
        assert view.shape == grid.shape
        assert view.tau == grid.tau

    def test_view_is_live(self):
        grid = BatchedFluidGrid((6, 5, 4), 2)
        view = grid.view(1)
        grid.density[1, 2, 2, 2] = 3.5
        assert view.density[2, 2, 2] == 3.5
        view.velocity[0, 1, 1, 1] = 0.25
        assert grid.velocity[1, 0, 1, 1, 1] == 0.25

    def test_view_tracks_buffer_swap(self):
        """After swap_distributions the view's df is the *new* buffer —
        the property reads through the batch on every access."""
        grid = BatchedFluidGrid((6, 5, 4), 2)
        view = grid.view(0)
        grid.df_new[0, 3] = 7.0
        assert not np.any(view.df[3] == 7.0)
        grid.swap_distributions()
        assert np.all(view.df[3] == 7.0)

    def test_gather_slot_is_a_deep_copy(self):
        grid = BatchedFluidGrid((6, 5, 4), 2)
        gathered = grid.gather_slot(0)
        gathered.density[...] = 9.0
        gathered.df[...] = 9.0
        assert not np.any(grid.density[0] == 9.0)
        assert not np.any(grid.df[0] == 9.0)

    def test_out_of_range_slot_rejected(self):
        grid = BatchedFluidGrid((6, 5, 4), 2)
        with pytest.raises(IndexError):
            grid.view(2)
        with pytest.raises(IndexError):
            grid.load_slot(-1, _seeded_fluid())


class TestSlotLifecycle:
    def test_load_slot_copies_state(self):
        grid = BatchedFluidGrid((6, 5, 4), 2, tau=0.8)
        fluid = _seeded_fluid(seed=3)
        grid.load_slot(1, fluid)
        assert np.array_equal(grid.df[1], fluid.df)
        assert np.array_equal(grid.density[1], fluid.density)
        # It is a copy: mutating the source does not reach the slot.
        fluid.density[...] = 0.0
        assert not np.any(grid.density[1] == 0.0)
        # The other slot is untouched.
        assert np.all(grid.density[0] == RHO0)

    def test_load_slot_validates_shape_and_lattice(self):
        grid = BatchedFluidGrid((6, 5, 4), 2, tau=0.8)
        with pytest.raises(ConfigurationError):
            grid.load_slot(0, FluidGrid((6, 5, 5), tau=0.8))
        with pytest.raises(ConfigurationError):
            grid.load_slot(0, FluidGrid((6, 5, 4), tau=0.9))
        with pytest.raises(ConfigurationError):
            grid.load_slot(
                0, FluidGrid((6, 5, 4), tau=0.8, collision_operator="trt")
            )

    def test_reset_slot_parks_at_equilibrium(self):
        grid = BatchedFluidGrid((6, 5, 4), 2, tau=0.8)
        grid.load_slot(1, _seeded_fluid(seed=5))
        grid.reset_slot(1)
        fresh = BatchedFluidGrid((6, 5, 4), 1, tau=0.8)
        assert np.array_equal(grid.df[1], fresh.df[0])
        assert np.all(grid.density[1] == RHO0)
        assert np.all(grid.velocity[1] == 0.0)

    def test_slot_finite_probe_is_per_slot(self):
        grid = BatchedFluidGrid((6, 5, 4), 2)
        assert grid.slot_finite(0) and grid.slot_finite(1)
        grid.density[1, 0, 0, 0] = np.nan
        assert grid.slot_finite(0)
        assert not grid.slot_finite(1)

    def test_nbytes_scales_with_batch(self):
        small = BatchedFluidGrid((6, 5, 4), 1)
        big = BatchedFluidGrid((6, 5, 4), 4)
        assert big.nbytes == 4 * small.nbytes
        assert small.num_nodes == 6 * 5 * 4
