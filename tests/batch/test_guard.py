"""SlotGuard: per-slot health sentinels, ejection containment, strikes."""

import numpy as np
import pytest

from repro.batch import BatchedFluidGrid, BatchedLBMIBSolver, SlotGuard
from repro.core.lbm.fields import FluidGrid
from repro.errors import ConfigurationError, InvariantError
from repro.observe import Telemetry
from repro.resilience.incident import IncidentLog
from repro.verify.oracle import _seeded_initial_fluid
from repro.config import SimulationConfig

SHAPE = (8, 6, 4)
TAU = 0.8


def _seeded_fluid(seed: int) -> FluidGrid:
    config = SimulationConfig(fluid_shape=SHAPE, tau=TAU)
    return _seeded_initial_fluid(config, seed)


def _guarded_solver(batch: int, guard: SlotGuard) -> BatchedLBMIBSolver:
    grid = BatchedFluidGrid(SHAPE, batch, tau=TAU)
    solver = BatchedLBMIBSolver(grid, guard=guard)
    for slot in range(batch):
        solver.load_slot(slot, _seeded_fluid(100 + slot), job_id=f"job{slot}")
    return solver


class TestValidation:
    def test_invalid_cadence_rejected(self):
        with pytest.raises(ConfigurationError):
            SlotGuard(every=0)

    def test_invalid_quarantine_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            SlotGuard(quarantine_after=0)


class TestEjection:
    def test_healthy_slots_never_ejected(self):
        guard = SlotGuard()
        solver = _guarded_solver(3, guard)
        solver.run(4)
        assert guard.take_ejections() == []
        assert solver.occupancy == 3

    def test_nan_slot_is_ejected_with_evacuated_state(self):
        guard = SlotGuard()
        solver = _guarded_solver(3, guard)
        solver.run(2)
        solver.grid.df[1].flat[::101] = np.nan
        solver.step()
        (ejection,) = guard.take_ejections()
        assert ejection.slot == 1
        assert ejection.job_step == 3
        assert ejection.invariant == "finite_fields"
        assert isinstance(ejection.error, InvariantError)
        # The evacuated post-mortem state carries the corruption...
        assert not np.isfinite(ejection.fluid.df).all()
        # ...while the parked slot is numerically benign again.
        assert not solver.active[1]
        assert np.isfinite(solver.grid.df[1]).all()

    def test_ejection_never_perturbs_sibling_slots(self):
        # Golden: the same three simulations with no corruption, solo.
        finals = []
        for slot in range(3):
            grid = BatchedFluidGrid(SHAPE, 1, tau=TAU)
            solo = BatchedLBMIBSolver(grid)
            solo.load_slot(0, _seeded_fluid(100 + slot))
            solo.run(5)
            finals.append(solo.grid.gather_slot(0))

        guard = SlotGuard()
        solver = _guarded_solver(3, guard)
        solver.run(2)
        solver.grid.df[1].flat[::97] = np.nan  # slot 1 blows up mid-run
        solver.run(3)
        assert len(guard.take_ejections()) == 1
        for slot in (0, 2):  # healthy siblings: bit-identical, delta 0.0
            survivor = solver.grid.gather_slot(slot)
            for name in ("df", "density", "velocity"):
                delta = np.max(
                    np.abs(
                        getattr(survivor, name) - getattr(finals[slot], name)
                    )
                )
                assert delta == 0.0

    def test_check_cadence_delays_detection(self):
        guard = SlotGuard(every=4)
        solver = _guarded_solver(1, guard)
        solver.grid.df[0].flat[:8] = np.nan
        solver.run(3)  # steps 1-3: off cadence, no check
        assert guard.take_ejections() == []
        solver.step()  # step 4: cadence hit
        assert len(guard.take_ejections()) == 1


class TestStrikes:
    def test_strikes_accumulate_per_job_across_rebinds(self):
        guard = SlotGuard(quarantine_after=2)
        solver = _guarded_solver(1, guard)
        solver.grid.df[0].flat[:4] = np.nan
        solver.step()
        (first,) = guard.take_ejections()
        assert (first.strikes, first.quarantined) == (1, False)
        # Same job id retried into the slot; fails again -> quarantined.
        solver.load_slot(0, _seeded_fluid(100), job_id="job0")
        solver.grid.df[0].flat[:4] = np.nan
        solver.step()
        (second,) = guard.take_ejections()
        assert (second.strikes, second.quarantined) == (2, True)
        assert guard.strikes_for("job0") == 2

    def test_forgive_clears_the_strike_record(self):
        guard = SlotGuard()
        guard._strikes["job0"] = 2
        guard.forgive("job0")
        assert guard.strikes_for("job0") == 0


class TestObservability:
    def test_ejection_is_journaled_and_counted(self):
        incidents = IncidentLog()
        telemetry = Telemetry()
        guard = SlotGuard(
            quarantine_after=1,
            incident_log=incidents,
            metrics=telemetry.metrics,
        )
        solver = _guarded_solver(2, guard)
        solver.grid.df[0].flat[:4] = np.nan
        solver.step()
        (event,) = incidents.events_of("slot_ejected")
        assert event.detail["job"] == "job0"
        assert event.detail["invariant"] == "finite_fields"
        assert event.detail["quarantined"] is True
        assert telemetry.metrics.counter("batch.ejections").value == 1
        assert telemetry.metrics.counter("batch.quarantined").value == 1
