"""BatchScheduler: grouping, admission order, continuous refill, determinism."""

import numpy as np
import pytest

from repro.batch import BatchScheduler, compatibility_key
from repro.config import BoundaryConfig, SimulationConfig, StructureConfig
from repro.core.lbm.fields import FluidGrid
from repro.errors import ConfigurationError
from repro.observe import Telemetry
from repro.verify.oracle import _seeded_initial_fluid


def _config(**overrides):
    defaults = dict(
        fluid_shape=(8, 8, 8),
        tau=0.8,
        structure=StructureConfig(kind="none"),
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def _fsi_config(**overrides):
    return _config(
        structure=StructureConfig(kind="flat_sheet", num_fibers=3, nodes_per_fiber=3),
        **overrides,
    )


class TestSubmission:
    def test_auto_job_ids_are_fifo(self):
        scheduler = BatchScheduler(max_batch=4)
        ids = [scheduler.submit(_config(), num_steps=2) for _ in range(3)]
        assert ids == ["sim0", "sim1", "sim2"]
        (group,) = scheduler.pending_groups().values()
        assert group == ids

    def test_duplicate_job_id_rejected(self):
        scheduler = BatchScheduler()
        scheduler.submit(_config(), num_steps=2, job_id="a")
        with pytest.raises(ConfigurationError):
            scheduler.submit(_config(), num_steps=2, job_id="a")

    def test_invalid_num_steps_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchScheduler().submit(_config(), num_steps=0)

    def test_mismatched_initial_fluid_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchScheduler().submit(
                _config(), num_steps=2, initial_fluid=FluidGrid((6, 6, 6), tau=0.8)
            )

    def test_invalid_scheduler_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchScheduler(max_batch=0)
        with pytest.raises(ConfigurationError):
            BatchScheduler(check_finite_every=-1)


class TestCompatibilityGrouping:
    def test_incompatible_configs_never_share_a_batch(self):
        """Shape, tau, operator, boundaries and dt all split groups;
        the immersed structure does not (IB is per slot)."""
        base = _config()
        assert compatibility_key(base) == compatibility_key(_config())
        assert compatibility_key(base) == compatibility_key(_fsi_config())
        different = [
            _config(fluid_shape=(8, 8, 4)),
            _config(tau=0.9),
            _config(collision_operator="trt"),
            _config(external_force=(1e-5, 0.0, 0.0)),
            _config(boundaries=(BoundaryConfig("bounce_back", "z", "high"),)),
        ]
        for other in different:
            assert compatibility_key(base) != compatibility_key(other)

    def test_groups_run_separately_with_correct_results(self):
        scheduler = BatchScheduler(max_batch=4)
        scheduler.submit(_config(), num_steps=2, job_id="bgk")
        scheduler.submit(_config(collision_operator="trt"), num_steps=3, job_id="trt")
        assert len(scheduler.pending_groups()) == 2
        results = scheduler.run()
        assert set(results) == {"bgk", "trt"}
        assert results["bgk"].steps_completed == 2
        assert results["trt"].steps_completed == 3
        assert all(r.status == "completed" for r in results.values())

    def test_queue_drains_after_run(self):
        scheduler = BatchScheduler(max_batch=2)
        scheduler.submit(_config(), num_steps=1)
        scheduler.run()
        assert scheduler.pending_groups() == {}
        # The scheduler is reusable for a new wave.
        scheduler.submit(_config(), num_steps=1)
        assert len(scheduler.run()) == 1


class TestContinuousRefill:
    def test_completed_slot_is_refilled_from_the_queue(self):
        """Five jobs through two slots: the queue drains through slot
        reuse, and every job runs its full step budget."""
        telemetry = Telemetry()
        scheduler = BatchScheduler(max_batch=2, telemetry=telemetry)
        for i in range(5):
            scheduler.submit(_config(), num_steps=2 + i % 2, job_id=f"job{i}")
        results = scheduler.run()
        assert len(results) == 5
        for i in range(5):
            assert results[f"job{i}"].status == "completed"
            assert results[f"job{i}"].steps_completed == 2 + i % 2
        # 3 of the 5 jobs were admitted into a retired slot.
        snapshot = telemetry.metrics.snapshot()
        assert snapshot["counters"]["batch.refills"] == 3
        assert snapshot["counters"]["batch.sims_completed"] == 5
        # Slots are reused: 5 jobs cannot have 5 distinct slots out of 2.
        assert {results[f"job{i}"].slot for i in range(5)} == {0, 1}

    def test_incompatible_refill_deferred_to_next_wave(self):
        """A refill_source handing back a compat-mismatched request must
        not abort the in-flight run (losing sibling results); the job is
        parked in the queue and runs as its own group in a later run."""
        from repro.batch import JobRequest

        mismatched = [
            JobRequest(config=_config(tau=0.9), num_steps=2, job_id="late")
        ]
        scheduler = BatchScheduler(max_batch=2)
        scheduler.refill_source = (
            lambda key: mismatched.pop() if mismatched else None
        )
        scheduler.submit(_config(), num_steps=2, job_id="first")
        results = scheduler.run()
        assert results["first"].status == "completed"
        assert "late" not in results
        assert scheduler.job_status("late") == "queued"
        assert scheduler.has_pending
        second = scheduler.run()
        assert second["late"].status == "completed"
        assert second["late"].steps_completed == 2

    def test_early_termination_refills_before_long_jobs_finish(self):
        """A short job retires mid-run and its slot is refilled while
        the long neighbour is still stepping."""
        scheduler = BatchScheduler(max_batch=2)
        scheduler.submit(_config(), num_steps=8, job_id="long")
        scheduler.submit(_config(), num_steps=2, job_id="short")
        scheduler.submit(_config(), num_steps=2, job_id="queued")
        results = scheduler.run()
        assert results["short"].slot == results["queued"].slot == 1
        assert results["long"].steps_completed == 8
        assert results["queued"].steps_completed == 2

    def test_diverged_slot_is_retired_and_refilled(self):
        """A NaN-seeded job is caught by the finite probe after one
        step, reported as diverged, and its slot is refilled; the
        replacement completes with clean physics."""
        config = _config()
        poisoned = FluidGrid(config.fluid_shape, tau=config.effective_tau)
        poisoned.df[...] = np.nan
        telemetry = Telemetry()
        scheduler = BatchScheduler(max_batch=1, telemetry=telemetry)
        scheduler.submit(config, num_steps=5, job_id="bad", initial_fluid=poisoned)
        scheduler.submit(config, num_steps=3, job_id="good")
        results = scheduler.run()
        assert results["bad"].status == "diverged"
        assert results["bad"].steps_completed == 1
        assert not np.isfinite(results["bad"].fluid.density).all()
        assert results["good"].status == "completed"
        assert results["good"].steps_completed == 3
        assert np.isfinite(results["good"].fluid.density).all()
        snapshot = telemetry.metrics.snapshot()
        assert snapshot["counters"]["batch.sims_diverged"] == 1
        assert snapshot["counters"]["batch.sims_completed"] == 1

    def test_disabled_probe_lets_divergence_run_to_budget(self):
        config = _config()
        poisoned = FluidGrid(config.fluid_shape, tau=config.effective_tau)
        poisoned.df[...] = np.nan
        scheduler = BatchScheduler(max_batch=1, check_finite_every=0)
        scheduler.submit(config, num_steps=3, initial_fluid=poisoned)
        (result,) = scheduler.run().values()
        assert result.status == "completed"
        assert result.steps_completed == 3


class TestDeterminism:
    def test_results_independent_of_batch_composition(self):
        """One job's final state is bit-identical whether it runs alone
        (max_batch=1), packed with unrelated neighbours (max_batch=4),
        or admitted late through a refill — continuous batching never
        changes the physics."""
        config = _fsi_config()

        def run_job(scheduler, extra_before=0, extra_after=0):
            for i in range(extra_before):
                scheduler.submit(config, num_steps=2, job_id=f"before{i}")
            scheduler.submit(
                config,
                num_steps=4,
                job_id="probe",
                initial_fluid=_seeded_initial_fluid(config, 77),
            )
            for i in range(extra_after):
                scheduler.submit(config, num_steps=6, job_id=f"after{i}")
            return scheduler.run()["probe"]

        alone = run_job(BatchScheduler(max_batch=1))
        packed = run_job(BatchScheduler(max_batch=4), extra_before=2, extra_after=3)
        refilled = run_job(BatchScheduler(max_batch=2), extra_before=2)
        for other in (packed, refilled):
            assert np.array_equal(alone.fluid.df, other.fluid.df)
            assert np.array_equal(alone.fluid.density, other.fluid.density)
            assert np.array_equal(alone.fluid.velocity, other.fluid.velocity)
            assert np.array_equal(
                alone.structure.sheets[0].positions,
                other.structure.sheets[0].positions,
            )
        assert alone.steps_completed == packed.steps_completed == 4
