"""Scheduler fault tolerance: retries, quarantine, checkpoints, resume."""

import json
import os

import numpy as np
import pytest

from repro.batch import BatchRetryPolicy, BatchScheduler
from repro.config import SimulationConfig, StructureConfig
from repro.errors import CheckpointError, ConfigurationError, WorkerKilledError
from repro.observe import Telemetry
from repro.resilience.faults import Fault, FaultInjector, FaultPlan
from repro.verify.golden import fields_digest

pytestmark = pytest.mark.faults


def _config(**overrides):
    defaults = dict(
        fluid_shape=(8, 8, 8),
        tau=0.8,
        structure=StructureConfig(kind="none"),
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def _fsi_config(**overrides):
    return _config(
        structure=StructureConfig(kind="flat_sheet", num_fibers=3, nodes_per_fiber=3),
        **overrides,
    )


def _golden_digests(configs, num_steps):
    scheduler = BatchScheduler(max_batch=4)
    for index, config in enumerate(configs):
        scheduler.submit(config, num_steps, job_id=f"j{index}")
    results = scheduler.run()
    assert all(r.status == "completed" for r in results.values())
    return {k: fields_digest(r.fluid, r.structure) for k, r in results.items()}


def _corrupt_fault(step, slot=0, **overrides):
    spec = dict(kind="corrupt_field", step=step, tid=slot, fluid_field="df")
    spec.update(overrides)
    return Fault(**spec)


class TestRetryLifecycle:
    def test_retry_completes_bit_identical_to_golden(self, tmp_path):
        golden = _golden_digests([_config()], 6)
        telemetry = Telemetry()
        scheduler = BatchScheduler(
            max_batch=1,
            telemetry=telemetry,
            retry_policy=BatchRetryPolicy(max_attempts=3, tau_damping=1.0),
            guard=True,
            workdir=tmp_path,
            checkpoint_every=2,
        )
        scheduler.fault_injector = FaultInjector([_corrupt_fault(step=3)])
        scheduler.submit(_config(), 6, job_id="j0")
        (result,) = scheduler.run().values()
        assert result.status == "completed"
        assert result.attempts == 2
        assert result.failure is None
        assert fields_digest(result.fluid, result.structure) == golden["j0"]
        assert scheduler.incidents.count("slot_ejected") == 1
        assert scheduler.incidents.count("job_retry") == 1
        assert telemetry.metrics.counter("batch.retries").value == 1

    def test_damped_retry_runs_in_new_group_and_completes(self):
        scheduler = BatchScheduler(
            max_batch=2,
            retry_policy=BatchRetryPolicy(max_attempts=3, tau_damping=1.25),
            guard=True,
            fault_injector=FaultInjector([_corrupt_fault(step=2)]),
        )
        scheduler.submit(_config(), 5, job_id="j0")
        scheduler.submit(_config(), 5, job_id="j1")
        results = scheduler.run()
        assert results["j0"].status == "completed"
        assert results["j0"].attempts == 2
        assert results["j1"].status == "completed"
        (retry,) = scheduler.incidents.events_of("job_retry")
        assert retry.detail["tau"] == pytest.approx(0.8 * 1.25)

    def test_exhausted_retries_produce_structured_failure(self, tmp_path):
        scheduler = BatchScheduler(
            max_batch=1,
            retry_policy=BatchRetryPolicy(max_attempts=2, tau_damping=1.0),
            guard=True,
            workdir=tmp_path,
            checkpoint_every=2,
            # once=False: the fault re-fires when the retry replays the
            # same trajectory through the same step.
            fault_injector=FaultInjector([_corrupt_fault(step=3, once=False)]),
        )
        scheduler.submit(_config(), 6, job_id="j0")
        (result,) = scheduler.run().values()
        assert result.status == "failed"
        assert result.attempts == 2
        failure = result.failure
        assert failure is not None
        assert failure.error_type == "InvariantError"
        assert failure.invariant == "finite_fields"
        assert failure.failing_step == 4
        assert failure.slot == 0
        assert failure.attempt == 2
        assert failure.chain and "InvariantError" in failure.chain[0]
        assert failure.incident_log == os.path.join(tmp_path, "incidents.jsonl")
        assert "InvariantError" in failure.root_cause
        # The post-mortem state is the evacuated corrupted slot.
        assert not np.isfinite(result.fluid.df).all()

    def test_quarantine_stops_retries_before_budget(self):
        telemetry = Telemetry()
        scheduler = BatchScheduler(
            max_batch=1,
            telemetry=telemetry,
            retry_policy=BatchRetryPolicy(max_attempts=5, tau_damping=1.0),
            guard=True,
            quarantine_after=2,
            fault_injector=FaultInjector([_corrupt_fault(step=2, once=False)]),
        )
        scheduler.submit(_config(), 6, job_id="j0")
        (result,) = scheduler.run().values()
        assert result.status == "failed"
        assert result.attempts == 2  # quarantined, not budget-exhausted
        assert result.failure.quarantined is True
        assert scheduler.incidents.count("job_quarantined") == 1
        assert telemetry.metrics.counter("batch.quarantined").value == 1

    def test_probe_divergence_without_policy_stays_terminal(self):
        scheduler = BatchScheduler(
            max_batch=1,
            fault_injector=FaultInjector([_corrupt_fault(step=2)]),
        )
        scheduler.submit(_config(), 6, job_id="j0")
        (result,) = scheduler.run().values()
        assert result.status == "diverged"
        assert result.attempts == 1
        assert result.failure is not None
        assert result.failure.invariant == "finite_probe"

    def test_invalid_policy_and_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchRetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            BatchRetryPolicy(tau_damping=0.9)
        with pytest.raises(ConfigurationError):
            BatchScheduler(checkpoint_every=2)  # needs a workdir
        with pytest.raises(ConfigurationError):
            BatchScheduler(keep_checkpoints=0)
        with pytest.raises(ConfigurationError):
            BatchScheduler(quarantine_after=0)


class TestCheckpointPersistence:
    def test_checkpoint_gc_bounds_files_on_disk(self, tmp_path):
        scheduler = BatchScheduler(
            max_batch=1, workdir=tmp_path, checkpoint_every=1, keep_checkpoints=2
        )
        scheduler.submit(_config(), 8, job_id="j0")
        scheduler.run()
        trail = sorted(
            p for p in os.listdir(tmp_path) if p.startswith("ckpt-j0-")
        )
        assert trail == ["ckpt-j0-00000007.npz", "ckpt-j0-00000008.npz"]

    def test_truncated_checkpoint_falls_back_to_older_one(self, tmp_path):
        golden = _golden_digests([_config()], 8)
        scheduler = BatchScheduler(
            max_batch=1,
            retry_policy=BatchRetryPolicy(max_attempts=3, tau_damping=1.0),
            guard=True,
            workdir=tmp_path,
            checkpoint_every=2,
            keep_checkpoints=4,
            fault_injector=FaultInjector(
                [
                    # Newest checkpoint before the blow-up is torn...
                    Fault(kind="truncate_checkpoint", step=4, nbytes=2048),
                    # ...and the blow-up forces a restart that must
                    # fall back past it to the step-2 checkpoint.
                    _corrupt_fault(step=5),
                ]
            ),
        )
        scheduler.submit(_config(), 8, job_id="j0")
        (result,) = scheduler.run().values()
        assert result.status == "completed"
        assert result.attempts == 2
        assert fields_digest(result.fluid, result.structure) == golden["j0"]
        assert scheduler.incidents.count("checkpoint_corrupt") >= 1
        (retry,) = scheduler.incidents.events_of("job_retry")
        assert retry.detail["from_step"] == 2

    def test_kill_and_resume_completes_every_job_losslessly(self, tmp_path):
        configs = [_config(), _fsi_config(), _config()]
        golden = _golden_digests(configs, 8)
        injector = FaultInjector([Fault(kind="kill_worker", step=5, tid=0)])
        kwargs = dict(
            max_batch=2,
            retry_policy=BatchRetryPolicy(max_attempts=3, tau_damping=1.0),
            guard=True,
            checkpoint_every=2,
        )
        scheduler = BatchScheduler(
            workdir=tmp_path, fault_injector=injector, **kwargs
        )
        for index, config in enumerate(configs):
            scheduler.submit(config, 8, job_id=f"j{index}")
        with pytest.raises(WorkerKilledError):
            scheduler.run()
        resumed = BatchScheduler.resume(
            tmp_path, fault_injector=injector, **kwargs
        )
        results = resumed.run()
        assert sorted(results) == ["j0", "j1", "j2"]
        for job_id, result in results.items():
            assert result.status == "completed"
            assert result.steps_completed == 8
            assert fields_digest(result.fluid, result.structure) == golden[job_id]
        assert resumed.incidents.count("scheduler_resumed") == 1

    def test_completed_results_restore_without_rerunning(self, tmp_path):
        golden = _golden_digests([_config(), _fsi_config()], 6)
        scheduler = BatchScheduler(
            max_batch=2, workdir=tmp_path, checkpoint_every=2
        )
        scheduler.submit(_config(), 6, job_id="j0")
        scheduler.submit(_fsi_config(), 6, job_id="j1")
        scheduler.run()
        resumed = BatchScheduler.resume(tmp_path)
        results = resumed.run()
        for job_id in ("j0", "j1"):
            result = results[job_id]
            assert result.status == "completed"
            assert result.slot == -1  # restored, not re-executed
            assert fields_digest(result.fluid, result.structure) == golden[job_id]

    @pytest.mark.parametrize("tamper", ["truncate", "stale_checksum", "delete"])
    def test_resume_falls_back_past_damaged_checkpoint(self, tmp_path, tamper):
        golden = _golden_digests([_config()], 8)
        kwargs = dict(max_batch=1, checkpoint_every=2)
        scheduler = BatchScheduler(
            workdir=tmp_path,
            fault_injector=FaultInjector(
                [Fault(kind="kill_worker", step=4, tid=0)]
            ),
            **kwargs,
        )
        scheduler.submit(_config(), 8, job_id="j0")
        with pytest.raises(WorkerKilledError):
            scheduler.run()

        manifest = json.load(open(os.path.join(tmp_path, "manifest.json")))
        entry = manifest["jobs"]["j0"]
        assert entry["status"] == "running"
        newest_path, newest_step = entry["checkpoints"][-1]
        assert newest_step == 4
        if tamper == "truncate":
            size = os.path.getsize(newest_path)
            with open(newest_path, "r+b") as fh:
                fh.truncate(size // 2)
        elif tamper == "stale_checksum":
            data = dict(np.load(newest_path))
            data["density"] = np.asarray(data["density"]) + 1e-3
            with open(newest_path, "wb") as fh:
                np.savez_compressed(fh, **data)
        else:
            os.unlink(newest_path)

        resumed = BatchScheduler.resume(tmp_path, **kwargs)
        assert resumed.incidents.count("checkpoint_corrupt") == 1
        (result,) = resumed.run().values()
        assert result.status == "completed"
        assert result.steps_completed == 8
        assert fields_digest(result.fluid, result.structure) == golden["j0"]

    def test_resume_requeues_job_with_no_checkpoints_from_scratch(self, tmp_path):
        golden = _golden_digests([_config()], 4)
        scheduler = BatchScheduler(
            workdir=tmp_path,
            max_batch=1,
            fault_injector=FaultInjector(
                [Fault(kind="kill_worker", step=1, tid=0)]
            ),
        )
        scheduler.submit(_config(), 4, job_id="j0")
        with pytest.raises(WorkerKilledError):
            scheduler.run()
        resumed = BatchScheduler.resume(tmp_path, max_batch=1)
        (result,) = resumed.run().values()
        assert result.status == "completed"
        assert fields_digest(result.fluid, result.structure) == golden["j0"]

    def test_resume_without_manifest_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            BatchScheduler.resume(tmp_path / "nowhere")

    def test_incident_journal_is_crash_safe_jsonl(self, tmp_path):
        from repro.resilience.incident import IncidentLog

        scheduler = BatchScheduler(
            workdir=tmp_path,
            max_batch=1,
            fault_injector=FaultInjector(
                [Fault(kind="kill_worker", step=2, tid=0)]
            ),
        )
        scheduler.submit(_config(), 4, job_id="j0")
        with pytest.raises(WorkerKilledError):
            scheduler.run()
        # The journal survives the "crash" readable line by line, even
        # with a torn tail appended.
        journal = os.path.join(tmp_path, "incidents.jsonl")
        with open(journal, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "torn')
        loaded = IncidentLog.load(journal)
        assert loaded.count("fault_injected") == 1
        assert "torn" not in loaded.counts()
