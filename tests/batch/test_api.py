"""``variant="batched"`` through the public Simulation facade.

A single Simulation runs as a batch of one; the state lives in the
batched layout behind a live slot view, so the whole verification
surface — differential oracle, golden digests, invariants, checkpoint
restore — sees it exactly like any other variant.
"""

import numpy as np
import pytest

from repro.api import Simulation
from repro.batch.fields import BatchSlotView
from repro.config import SimulationConfig, StructureConfig
from repro.verify import compare_variants
from repro.verify.golden import GOLDEN_CASES, GOLDEN_VARIANTS, compute_baseline
from repro.verify.oracle import _seeded_initial_fluid

pytestmark = pytest.mark.verify


def _config(**overrides):
    defaults = dict(
        fluid_shape=(8, 8, 8),
        tau=0.8,
        solver="batched",
        structure=StructureConfig(kind="flat_sheet", num_fibers=3, nodes_per_fiber=3),
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestFacade:
    def test_runs_and_exposes_live_state(self):
        with Simulation(_config()) as sim:
            assert isinstance(sim.fluid, BatchSlotView)
            sim.run(3)
            assert sim.time_step == 3
            assert np.isfinite(sim.fluid.density).all()
            assert np.isfinite(sim.kinetic_energy())
            snap = sim.solver.snapshot()
            assert np.array_equal(snap["density"], sim.fluid.density)

    def test_config_accepts_batched_solver(self):
        assert _config().solver == "batched"

    @pytest.mark.parametrize("operator", ["bgk", "trt"])
    def test_oracle_matches_sequential(self, operator):
        divergence = compare_variants(
            _config(solver="sequential", collision_operator=operator),
            "sequential",
            "batched",
            num_steps=4,
            state_seed=7,
        )
        assert divergence is None

    def test_checkpoint_roundtrip_is_transparent(self, tmp_path):
        """Checkpoint at step 2 and resume: bit-identical to the
        uninterrupted batched run at step 4."""
        config = _config()
        fluid = _seeded_initial_fluid(config, 19)
        with Simulation(config, initial_fluid=fluid.copy()) as straight:
            straight.run(4)
            expected = {
                name: np.array(getattr(straight.fluid, name))
                for name in ("df", "density", "velocity")
            }
        path = tmp_path / "batched.npz"
        with Simulation(config, initial_fluid=fluid.copy()) as sim:
            sim.run(2)
            sim.checkpoint(path)
        with Simulation.from_checkpoint(path, config) as resumed:
            resumed.run(2)
            assert resumed.time_step == 4
            for name, value in expected.items():
                np.testing.assert_array_equal(getattr(resumed.fluid, name), value)


class TestGoldenBaselines:
    def test_batched_variant_registered(self):
        assert GOLDEN_VARIANTS.get("_batched") == "batched"

    @pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
    def test_batched_digest_equals_sequential(self, name):
        """Not just tolerance-close: every golden scenario reproduces
        the sequential digest exactly under the batched layout."""
        case = GOLDEN_CASES[name]
        sequential = compute_baseline(name, case, "sequential")
        batched = compute_baseline(name, case, "batched")
        assert batched["digest"] == sequential["digest"]
        assert batched["stats"] == sequential["stats"]
