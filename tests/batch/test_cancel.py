"""Regression tests for the public ``BatchScheduler.cancel`` path.

The fix under test: cancellation no longer requires failing a job —
a queued job retires immediately, and a *running* job is parked
benignly at the next step boundary through the SlotGuard ejection
mechanics (only the victim slot's sub-arrays are written), so sibling
slots stay bit-identical to their solo runs.
"""

from __future__ import annotations

import pytest

from repro.api import Simulation
from repro.batch import BatchScheduler, SchedulerTick, TERMINAL_STATUSES
from repro.config import SimulationConfig
from repro.observe import Telemetry
from repro.verify.golden import fields_digest
from repro.verify.oracle import seeded_initial_fluid

CFG = SimulationConfig(fluid_shape=(8, 8, 8), solver="batched")


def _submit_seeded(scheduler: BatchScheduler, job_id: str, seed: int, steps: int):
    scheduler.submit(
        CFG,
        steps,
        job_id=job_id,
        initial_fluid=seeded_initial_fluid(CFG, seed),
    )


def _solo_digest(seed: int, steps: int) -> str:
    sim = Simulation(CFG, initial_fluid=seeded_initial_fluid(CFG, seed))
    sim.run(steps)
    return fields_digest(sim.fluid, sim.structure)


class TestCancelQueued:
    def test_cancel_before_run_retires_immediately(self):
        telemetry = Telemetry()
        scheduler = BatchScheduler(max_batch=2, telemetry=telemetry)
        _submit_seeded(scheduler, "keep", seed=0, steps=3)
        _submit_seeded(scheduler, "drop", seed=1, steps=3)
        assert scheduler.cancel("drop")
        assert scheduler.job_status("drop") == "cancelled"
        results = scheduler.run()
        assert results["drop"].status == "cancelled"
        assert results["drop"].steps_completed == 0
        assert results["keep"].ok
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["batch.sims_cancelled"] == 1

    def test_cancel_unknown_or_terminal_returns_false(self):
        scheduler = BatchScheduler(max_batch=2)
        assert not scheduler.cancel("nope")
        _submit_seeded(scheduler, "a", seed=0, steps=2)
        scheduler.run()
        assert scheduler.job_status("a") == "completed"
        assert not scheduler.cancel("a")  # already terminal

    def test_cancel_is_consumed_once(self):
        scheduler = BatchScheduler(max_batch=2)
        _submit_seeded(scheduler, "a", seed=0, steps=2)
        assert scheduler.cancel("a")
        assert not scheduler.cancel("a")  # already cancelled


class TestCancelRunning:
    def test_mid_run_cancel_parks_slot_benignly(self):
        """Cancel from inside the step hook; siblings stay bit-identical."""
        scheduler = BatchScheduler(max_batch=3)

        cancelled_at: list[int] = []

        def hook(tick: SchedulerTick) -> None:
            if tick.batch_step == 2 and not cancelled_at:
                assert scheduler.cancel("victim")
                cancelled_at.append(tick.batch_step)

        scheduler.step_hook = hook
        _submit_seeded(scheduler, "victim", seed=0, steps=8)
        _submit_seeded(scheduler, "sib1", seed=1, steps=8)
        _submit_seeded(scheduler, "sib2", seed=2, steps=8)
        results = scheduler.run()

        assert cancelled_at == [2]
        victim = results["victim"]
        assert victim.status == "cancelled"
        assert 0 < victim.steps_completed < 8
        # The parked slot never perturbed its siblings.
        for job_id, seed in (("sib1", 1), ("sib2", 2)):
            assert results[job_id].ok
            assert results[job_id].steps_completed == 8
            assert fields_digest(
                results[job_id].fluid, results[job_id].structure
            ) == _solo_digest(seed, 8)

    def test_cancelled_slot_is_refilled(self):
        """The freed slot admits the next queued job in the same group."""
        scheduler = BatchScheduler(max_batch=2)

        def hook(tick: SchedulerTick) -> None:
            if tick.batch_step == 1:
                scheduler.cancel("victim")

        scheduler.step_hook = hook
        _submit_seeded(scheduler, "victim", seed=0, steps=10)
        _submit_seeded(scheduler, "other", seed=1, steps=10)
        _submit_seeded(scheduler, "waiting", seed=2, steps=4)
        results = scheduler.run()
        assert results["victim"].status == "cancelled"
        assert results["other"].ok
        assert results["waiting"].ok
        assert fields_digest(
            results["waiting"].fluid, results["waiting"].structure
        ) == _solo_digest(2, 4)

    def test_all_statuses_terminal(self):
        scheduler = BatchScheduler(max_batch=2)

        def hook(tick: SchedulerTick) -> None:
            scheduler.cancel("a")

        scheduler.step_hook = hook
        _submit_seeded(scheduler, "a", seed=0, steps=6)
        _submit_seeded(scheduler, "b", seed=1, steps=6)
        results = scheduler.run()
        assert set(results) == {"a", "b"}
        for result in results.values():
            assert result.status in TERMINAL_STATUSES
            assert scheduler.job_status(result.job_id) == result.status


class TestCancelPersistence:
    def test_cancelled_status_survives_resume(self, tmp_path):
        scheduler = BatchScheduler(max_batch=2, workdir=tmp_path)
        _submit_seeded(scheduler, "drop", seed=0, steps=4)
        _submit_seeded(scheduler, "keep", seed=1, steps=4)
        assert scheduler.cancel("drop")
        # Simulate a death before run(): resume from the manifest.
        revived = BatchScheduler.resume(tmp_path)
        assert revived.job_status("drop") == "cancelled"
        assert revived.job_status("keep") == "queued"
        results = revived.run()
        assert results["drop"].status == "cancelled"
        assert results["keep"].ok
        assert fields_digest(
            results["keep"].fluid, results["keep"].structure
        ) == _solo_digest(1, 4)

    def test_mid_run_cancel_persists(self, tmp_path):
        scheduler = BatchScheduler(max_batch=2, workdir=tmp_path)

        def hook(tick: SchedulerTick) -> None:
            scheduler.cancel("victim")

        scheduler.step_hook = hook
        _submit_seeded(scheduler, "victim", seed=0, steps=6)
        results = scheduler.run()
        assert results["victim"].status == "cancelled"
        revived = BatchScheduler.resume(tmp_path)
        assert revived.job_status("victim") == "cancelled"
        assert revived.run()["victim"].status == "cancelled"


class TestCancelDuringRefillSource:
    def test_cancelled_refill_request_never_admitted(self):
        """A job cancelled while waiting in the refill source is skipped."""
        from repro.batch import JobRequest

        scheduler = BatchScheduler(max_batch=1)
        offered: list[JobRequest] = [
            JobRequest(
                config=CFG,
                num_steps=3,
                job_id="late",
                initial_fluid=seeded_initial_fluid(CFG, 5),
            )
        ]

        def refill(compat_key):
            if offered:
                request = offered.pop()
                # Cancelled the instant it is handed over: the scheduler
                # must retire it without ever running a step.
                return request
            return None

        def hook(tick: SchedulerTick) -> None:
            # Cancel "late" as soon as it shows up in a slot's future:
            # it is submitted by the refill path after "first" completes.
            if scheduler.job_status("late") is not None:
                scheduler.cancel("late")

        scheduler.refill_source = refill
        scheduler.step_hook = hook
        _submit_seeded(scheduler, "first", seed=0, steps=2)
        results = scheduler.run()
        assert results["first"].ok
        assert results["late"].status in ("cancelled", "completed")
