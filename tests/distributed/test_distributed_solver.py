"""Tests of the distributed-memory LBM-IB solver."""

import numpy as np
import pytest

from repro.core.ib import geometry
from repro.core.lbm.boundaries import BounceBackWall, OutflowBoundary
from repro.core.lbm.fields import FluidGrid
from repro.core.solver import SequentialLBMIBSolver
from repro.distributed import DistributedLBMIBSolver
from repro.errors import ConfigurationError

SHAPE = (12, 8, 8)
STEPS = 6
RTOL, ATOL = 1e-10, 1e-12


def _make_state(with_structure=True):
    grid = FluidGrid(SHAPE, tau=0.8)
    structure = None
    if with_structure:
        structure = geometry.flat_sheet(
            SHAPE, num_fibers=4, nodes_per_fiber=4, stretch_coefficient=0.04
        )
        structure.sheets[0].positions[1, 1, 0] += 0.6
    return grid, structure


@pytest.fixture(scope="module")
def sequential_result():
    grid, structure = _make_state()
    SequentialLBMIBSolver(grid, structure).run(STEPS)
    return grid, structure


class TestEquivalence:
    @pytest.mark.parametrize("ranks", [1, 2, 3, 4, 6])
    def test_matches_sequential(self, sequential_result, ranks):
        ref_grid, ref_structure = sequential_result
        grid, structure = _make_state()
        solver = DistributedLBMIBSolver(grid, structure, num_ranks=ranks)
        solver.run(STEPS)
        assert ref_grid.state_allclose(solver.gather_fluid(), rtol=RTOL, atol=ATOL)
        assert ref_structure.state_allclose(solver.structure, rtol=RTOL, atol=ATOL)

    def test_replicas_stay_bitwise_identical(self):
        """Every rank must hold the same structure after any run."""
        grid, structure = _make_state()
        solver = DistributedLBMIBSolver(grid, structure, num_ranks=3)
        solver.run(STEPS)
        assert solver.structures_consistent(rtol=0.0, atol=0.0)

    def test_with_boundaries(self):
        boundaries = [
            BounceBackWall(0, "low", wall_velocity=(0.02, 0, 0)),
            OutflowBoundary(0, "high"),
            BounceBackWall(1, "low"),
            BounceBackWall(1, "high"),
        ]
        ref_grid, ref_structure = _make_state()
        SequentialLBMIBSolver(ref_grid, ref_structure, boundaries=boundaries).run(STEPS)
        grid, structure = _make_state()
        solver = DistributedLBMIBSolver(
            grid, structure, num_ranks=3, boundaries=boundaries
        )
        solver.run(STEPS)
        assert ref_grid.state_allclose(solver.gather_fluid(), rtol=RTOL, atol=ATOL)

    def test_fluid_only(self):
        grid_a, _ = _make_state(with_structure=False)
        rng = np.random.default_rng(5)
        grid_a.initialize_equilibrium(
            velocity=0.01 * rng.standard_normal((3,) + SHAPE)
        )
        grid_b = grid_a.copy()
        SequentialLBMIBSolver(grid_a, None).run(STEPS)
        solver = DistributedLBMIBSolver(grid_b, None, num_ranks=4)
        solver.run(STEPS)
        assert grid_a.state_allclose(solver.gather_fluid(), rtol=RTOL, atol=ATOL)

    def test_external_force(self):
        force = (2e-5, 0.0, 0.0)
        grid_a, struct_a = _make_state()
        SequentialLBMIBSolver(grid_a, struct_a, external_force=force).run(STEPS)
        grid_b, struct_b = _make_state()
        solver = DistributedLBMIBSolver(
            grid_b, struct_b, num_ranks=2, external_force=force
        )
        solver.run(STEPS)
        assert grid_a.state_allclose(solver.gather_fluid(), rtol=RTOL, atol=ATOL)

    def test_trt_operator_distributed(self):
        grid_a = FluidGrid(SHAPE, tau=0.8, collision_operator="trt")
        rng = np.random.default_rng(9)
        grid_a.initialize_equilibrium(
            velocity=0.01 * rng.standard_normal((3,) + SHAPE)
        )
        grid_b = grid_a.copy()
        SequentialLBMIBSolver(grid_a, None).run(STEPS)
        solver = DistributedLBMIBSolver(grid_b, None, num_ranks=3)
        solver.run(STEPS)
        assert grid_a.state_allclose(solver.gather_fluid(), rtol=RTOL, atol=ATOL)

    def test_uneven_slabs(self, sequential_result):
        """Nx = 12 over 5 ranks: slabs of 3,3,2,2,2."""
        ref_grid, _ = sequential_result
        grid, structure = _make_state()
        solver = DistributedLBMIBSolver(grid, structure, num_ranks=5)
        solver.run(STEPS)
        assert ref_grid.state_allclose(solver.gather_fluid(), rtol=RTOL, atol=ATOL)


class TestCommunicationPattern:
    def test_two_messages_per_rank_per_step(self):
        grid, _ = _make_state(with_structure=False)
        solver = DistributedLBMIBSolver(grid, None, num_ranks=3)
        solver.run(4)
        # each rank sends one right-going and one left-going halo per step
        assert solver.comm.total_messages() == 3 * 2 * 4

    def test_halo_bytes(self):
        grid, _ = _make_state(with_structure=False)
        solver = DistributedLBMIBSolver(grid, None, num_ranks=2)
        solver.run(1)
        ny, nz = SHAPE[1], SHAPE[2]
        per_message = 5 * ny * nz * 8  # five populations, doubles
        assert solver.comm.total_bytes_sent() == 2 * 2 * per_message

    def test_more_ranks_than_planes_rejected(self):
        grid, structure = _make_state()
        with pytest.raises(ConfigurationError, match="x-planes"):
            DistributedLBMIBSolver(grid, structure, num_ranks=13)

    def test_zero_ranks_rejected(self):
        grid, structure = _make_state()
        with pytest.raises(ConfigurationError):
            DistributedLBMIBSolver(grid, structure, num_ranks=0)

    def test_single_plane_slabs(self):
        """Every rank owning exactly one x-plane still streams correctly."""
        grid, _ = _make_state(with_structure=False)
        rng = np.random.default_rng(11)
        grid.initialize_equilibrium(velocity=0.01 * rng.standard_normal((3,) + SHAPE))
        ref = grid.copy()
        SequentialLBMIBSolver(ref, None).run(3)
        solver = DistributedLBMIBSolver(grid, None, num_ranks=12)
        solver.run(3)
        assert ref.state_allclose(solver.gather_fluid(), rtol=RTOL, atol=ATOL)
