"""Tests of the simulated message-passing communicator."""

import numpy as np
import pytest

from repro.distributed import SimulatedComm
from repro.errors import ConfigurationError
from repro.parallel.executor import run_spmd


class TestPointToPoint:
    def test_send_recv_delivers_copy(self):
        comm = SimulatedComm(2)
        payload = np.arange(6.0)
        results = {}

        def worker(rank):
            rc = comm.rank_comm(rank)
            if rank == 0:
                rc.send(1, tag=7, array=payload)
            else:
                results["got"] = rc.recv(0, tag=7)

        run_spmd(2, worker)
        np.testing.assert_array_equal(results["got"], payload)
        # transport copies: mutating the original cannot reach the receiver
        assert results["got"] is not payload

    def test_tags_separate_messages(self):
        comm = SimulatedComm(2)
        results = {}

        def worker(rank):
            rc = comm.rank_comm(rank)
            if rank == 0:
                rc.send(1, tag=2, array=np.array([2.0]))
                rc.send(1, tag=1, array=np.array([1.0]))
            else:
                results["first"] = rc.recv(0, tag=1)[0]
                results["second"] = rc.recv(0, tag=2)[0]

        run_spmd(2, worker)
        assert results["first"] == 1.0
        assert results["second"] == 2.0

    def test_recv_timeout(self):
        comm = SimulatedComm(2)
        rc = comm.rank_comm(1)
        with pytest.raises(TimeoutError):
            rc.recv(0, tag=0, timeout=0.05)

    def test_self_sendrecv(self):
        comm = SimulatedComm(1)
        rc = comm.rank_comm(0)
        got = rc.sendrecv(0, 0, tag=3, array=np.array([42.0]))
        assert got[0] == 42.0

    def test_stats_accounting(self):
        comm = SimulatedComm(2)

        def worker(rank):
            rc = comm.rank_comm(rank)
            if rank == 0:
                rc.send(1, 0, np.zeros(10))
            else:
                rc.recv(0, 0)

        run_spmd(2, worker)
        assert comm.stats[0].messages_sent == 1
        assert comm.stats[0].bytes_sent == 80
        assert comm.stats[1].messages_received == 1
        assert comm.total_messages() == 1

    def test_rank_bounds_checked(self):
        comm = SimulatedComm(2)
        with pytest.raises(ConfigurationError):
            comm.rank_comm(2)
        rc = comm.rank_comm(0)
        with pytest.raises(ConfigurationError):
            rc.send(5, 0, np.zeros(1))

    def test_rejects_empty_communicator(self):
        with pytest.raises(ConfigurationError):
            SimulatedComm(0)


class TestCollectives:
    def test_allreduce_sums_over_ranks(self):
        comm = SimulatedComm(3)
        results = {}

        def worker(rank):
            rc = comm.rank_comm(rank)
            out = rc.allreduce_sum(np.full(4, float(rank + 1)))
            results[rank] = out

        run_spmd(3, worker)
        for rank in range(3):
            np.testing.assert_array_equal(results[rank], np.full(4, 6.0))

    def test_allreduce_identical_across_ranks(self):
        comm = SimulatedComm(4)
        results = {}

        def worker(rank):
            rng = np.random.default_rng(rank)
            rc = comm.rank_comm(rank)
            results[rank] = rc.allreduce_sum(rng.standard_normal(5))

        run_spmd(4, worker)
        for rank in range(1, 4):
            np.testing.assert_array_equal(results[0], results[rank])

    def test_allreduce_reusable(self):
        comm = SimulatedComm(2)
        results = {}

        def worker(rank):
            rc = comm.rank_comm(rank)
            a = rc.allreduce_sum(np.array([1.0]))
            b = rc.allreduce_sum(np.array([2.0]))
            results[rank] = (a[0], b[0])

        run_spmd(2, worker)
        assert results[0] == (2.0, 4.0)
        assert results[1] == (2.0, 4.0)

    def test_barrier_synchronizes(self):
        import time

        comm = SimulatedComm(3)
        order = []
        import threading

        lock = threading.Lock()

        def worker(rank):
            rc = comm.rank_comm(rank)
            if rank == 0:
                time.sleep(0.03)
            with lock:
                order.append(("before", rank))
            rc.barrier()
            with lock:
                order.append(("after", rank))

        run_spmd(3, worker)
        befores = [i for i, (p, _) in enumerate(order) if p == "before"]
        afters = [i for i, (p, _) in enumerate(order) if p == "after"]
        assert max(befores) < min(afters)
