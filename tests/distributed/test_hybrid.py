"""Tests of the hybrid distributed + cube solver."""

import numpy as np
import pytest

from repro.core.ib import geometry
from repro.core.lbm.boundaries import BounceBackWall, OutflowBoundary
from repro.core.lbm.fields import FluidGrid
from repro.core.solver import SequentialLBMIBSolver
from repro.distributed import HybridCubeLBMIBSolver
from repro.errors import PartitionError

SHAPE = (16, 8, 8)
STEPS = 5
RTOL, ATOL = 1e-10, 1e-12


def _make_state(with_structure=True):
    grid = FluidGrid(SHAPE, tau=0.8)
    structure = None
    if with_structure:
        structure = geometry.flat_sheet(
            SHAPE, num_fibers=4, nodes_per_fiber=4, stretch_coefficient=0.04
        )
        structure.sheets[0].positions[1, 1, 0] += 0.6
    return grid, structure


@pytest.fixture(scope="module")
def sequential_result():
    grid, structure = _make_state()
    SequentialLBMIBSolver(grid, structure).run(STEPS)
    return grid, structure


class TestEquivalence:
    @pytest.mark.parametrize("ranks,k", [(1, 4), (2, 4), (4, 4), (2, 2), (4, 2)])
    def test_matches_sequential(self, sequential_result, ranks, k):
        ref_grid, ref_structure = sequential_result
        grid, structure = _make_state()
        solver = HybridCubeLBMIBSolver(grid, structure, num_ranks=ranks, cube_size=k)
        solver.run(STEPS)
        assert ref_grid.state_allclose(solver.gather_fluid(), rtol=RTOL, atol=ATOL)
        assert ref_structure.state_allclose(solver.structure, rtol=RTOL, atol=ATOL)

    def test_with_boundaries(self):
        boundaries = [
            BounceBackWall(0, "low", wall_velocity=(0.02, 0, 0)),
            OutflowBoundary(0, "high"),
            BounceBackWall(1, "low"),
            BounceBackWall(1, "high"),
        ]
        ref_grid, ref_structure = _make_state()
        SequentialLBMIBSolver(ref_grid, ref_structure, boundaries=boundaries).run(STEPS)
        grid, structure = _make_state()
        solver = HybridCubeLBMIBSolver(
            grid, structure, num_ranks=2, cube_size=4, boundaries=boundaries
        )
        solver.run(STEPS)
        assert ref_grid.state_allclose(solver.gather_fluid(), rtol=RTOL, atol=ATOL)

    def test_fluid_only_with_trt(self):
        grid_a = FluidGrid(SHAPE, tau=0.8, collision_operator="trt")
        rng = np.random.default_rng(3)
        grid_a.initialize_equilibrium(velocity=0.01 * rng.standard_normal((3,) + SHAPE))
        grid_b = grid_a.copy()
        SequentialLBMIBSolver(grid_a, None).run(STEPS)
        solver = HybridCubeLBMIBSolver(grid_b, None, num_ranks=2, cube_size=2)
        solver.run(STEPS)
        assert grid_a.state_allclose(solver.gather_fluid(), rtol=RTOL, atol=ATOL)

    def test_external_force(self):
        force = (2e-5, 0.0, 0.0)
        grid_a, struct_a = _make_state()
        SequentialLBMIBSolver(grid_a, struct_a, external_force=force).run(STEPS)
        grid_b, struct_b = _make_state()
        solver = HybridCubeLBMIBSolver(
            grid_b, struct_b, num_ranks=2, cube_size=4, external_force=force
        )
        solver.run(STEPS)
        assert grid_a.state_allclose(solver.gather_fluid(), rtol=RTOL, atol=ATOL)

    def test_uneven_cube_rows(self):
        """4 cube-rows of x over 3 ranks: slabs of 2, 1, 1 cubes."""
        ref_grid, ref_structure = _make_state()
        SequentialLBMIBSolver(ref_grid, ref_structure).run(STEPS)
        grid, structure = _make_state()
        solver = HybridCubeLBMIBSolver(grid, structure, num_ranks=3, cube_size=4)
        assert solver.slab_sizes == [8, 4, 4]
        solver.run(STEPS)
        assert ref_grid.state_allclose(solver.gather_fluid(), rtol=RTOL, atol=ATOL)


class TestValidation:
    def test_rejects_more_ranks_than_cube_rows(self):
        grid, structure = _make_state()
        with pytest.raises(PartitionError, match="rank slabs"):
            HybridCubeLBMIBSolver(grid, structure, num_ranks=5, cube_size=4)

    def test_rejects_indivisible_yz(self):
        grid = FluidGrid((16, 10, 8), tau=0.8)
        with pytest.raises(PartitionError, match="y/z"):
            HybridCubeLBMIBSolver(grid, None, num_ranks=2, cube_size=4)

    def test_rejects_indivisible_x(self):
        grid = FluidGrid((18, 8, 8), tau=0.8)
        with pytest.raises(PartitionError):
            HybridCubeLBMIBSolver(grid, None, num_ranks=2, cube_size=4)

    def test_halo_traffic_counted(self):
        grid, _ = _make_state(with_structure=False)
        solver = HybridCubeLBMIBSolver(grid, None, num_ranks=2, cube_size=4)
        solver.run(2)
        assert solver.comm.total_messages() == 2 * 2 * 2  # ranks x sides x steps
