"""Physics validation: the solver against analytic fluid solutions.

These anchor the whole numerical stack — if the LBM core, the forcing
scheme, or the boundary conditions drift, these catch it against known
closed-form solutions.
"""

import numpy as np
import pytest

from repro.constants import viscosity_from_tau
from repro.core import kernels
from repro.core.lbm.boundaries import BounceBackWall
from repro.core.lbm.fields import FluidGrid
from repro.core.solver import SequentialLBMIBSolver


class TestTaylorGreenDecay:
    def test_viscous_decay_rate(self):
        """A 2D Taylor-Green vortex decays as exp(-nu (kx^2+ky^2) t)."""
        n = 24
        tau = 0.8
        nu = viscosity_from_tau(tau)
        grid = FluidGrid((n, n, 2), tau=tau)
        k = 2 * np.pi / n
        x = np.arange(n)
        X, Y = np.meshgrid(x, x, indexing="ij")
        u0 = 0.01
        u = np.zeros((3, n, n, 2))
        u[0] = (u0 * np.cos(k * X) * np.sin(k * Y))[:, :, None]
        u[1] = (-u0 * np.sin(k * X) * np.cos(k * Y))[:, :, None]
        grid.initialize_equilibrium(velocity=u)

        steps = 120
        solver = SequentialLBMIBSolver(grid, None)
        solver.run(steps)
        expected = np.exp(-nu * 2 * k**2 * steps)
        measured = np.abs(grid.velocity[0]).max() / u0
        assert measured == pytest.approx(expected, rel=0.02)

    def test_vortex_structure_preserved(self):
        """Decay is self-similar: the velocity stays proportional to u(0)."""
        n = 16
        grid = FluidGrid((n, n, 2), tau=0.9)
        k = 2 * np.pi / n
        x = np.arange(n)
        X, Y = np.meshgrid(x, x, indexing="ij")
        u = np.zeros((3, n, n, 2))
        u[0] = (0.01 * np.cos(k * X) * np.sin(k * Y))[:, :, None]
        u[1] = (-0.01 * np.sin(k * X) * np.cos(k * Y))[:, :, None]
        grid.initialize_equilibrium(velocity=u)
        u_init = grid.velocity.copy()
        SequentialLBMIBSolver(grid, None).run(60)
        scale = grid.velocity[0, 1, 1, 0] / u_init[0, 1, 1, 0]
        np.testing.assert_allclose(
            grid.velocity, scale * u_init, rtol=0.05, atol=1e-6
        )


class TestPoiseuille:
    @pytest.mark.slow
    def test_parabolic_profile(self):
        """Body-force-driven channel flow between bounce-back walls."""
        h = 12
        tau = 0.9
        nu = viscosity_from_tau(tau)
        grid = FluidGrid((4, h, 4), tau=tau)
        f = 1e-5
        solver = SequentialLBMIBSolver(
            grid,
            None,
            boundaries=[BounceBackWall(1, "low"), BounceBackWall(1, "high")],
            external_force=(f, 0.0, 0.0),
        )
        solver.run(2500)
        ux = grid.velocity[0, 0, :, 0]
        y = np.arange(h)
        # halfway bounce-back puts the walls at y = -1/2 and y = h - 1/2
        analytic = f / (2 * nu) * (y + 0.5) * (h - 0.5 - y)
        # the wall-adjacent nodes carry the well-known halfway bounce-back
        # slip error of O(1%) for forced flow; interior nodes are tighter
        np.testing.assert_allclose(ux, analytic, rtol=1e-2)
        np.testing.assert_allclose(ux[2:-2], analytic[2:-2], rtol=2e-3)

    def test_steady_state_reached(self):
        h = 8
        grid = FluidGrid((4, h, 4), tau=0.9)
        solver = SequentialLBMIBSolver(
            grid,
            None,
            boundaries=[BounceBackWall(1, "low"), BounceBackWall(1, "high")],
            external_force=(1e-5, 0.0, 0.0),
        )
        solver.run(2000)
        u1 = grid.velocity.copy()
        solver.run(100)
        np.testing.assert_allclose(grid.velocity, u1, rtol=1e-3, atol=1e-10)


class TestCouette:
    @pytest.mark.slow
    def test_linear_profile(self):
        """A moving top wall drags a linear velocity profile."""
        h = 10
        u_wall = 0.02
        grid = FluidGrid((4, h, 4), tau=0.8)
        solver = SequentialLBMIBSolver(
            grid,
            None,
            boundaries=[
                BounceBackWall(1, "low"),
                BounceBackWall(1, "high", wall_velocity=(u_wall, 0.0, 0.0)),
            ],
        )
        solver.run(3000)
        ux = grid.velocity[0, 0, :, 0]
        y = np.arange(h)
        analytic = u_wall * (y + 0.5) / h
        np.testing.assert_allclose(ux, analytic, rtol=1e-2, atol=1e-6)


class TestFSICoupling:
    def test_rigid_ish_sheet_slows_channel_flow(self):
        """An immersed sheet across a channel acts as a porous obstacle."""
        from repro.core.ib import geometry

        shape = (16, 12, 12)

        def flow_with(structure):
            grid = FluidGrid(shape, tau=0.8)
            solver = SequentialLBMIBSolver(
                grid, structure, external_force=(2e-5, 0.0, 0.0)
            )
            solver.run(200)
            return grid.velocity[0].mean()

        free = flow_with(None)
        # stiff tethered plate spanning the cross-section
        plate = geometry.circular_plate(
            shape,
            num_fibers=9,
            nodes_per_fiber=9,
            radius=4.0,
            fastened_radius_fraction=1.0,
            tether_coefficient=0.5,
            stretch_coefficient=0.1,
            bend_coefficient=1e-3,
        )
        obstructed = flow_with(plate)
        assert obstructed < 0.8 * free

    def test_energy_does_not_blow_up(self):
        from repro.core.ib import geometry
        from repro.core.lbm import analysis

        shape = (12, 12, 12)
        grid = FluidGrid(shape, tau=0.8)
        structure = geometry.flat_sheet(
            shape, num_fibers=5, nodes_per_fiber=5, stretch_coefficient=0.02
        )
        structure.sheets[0].positions[2, 2, 0] += 0.5
        solver = SequentialLBMIBSolver(grid, structure, check_stability_every=10)
        energies = []
        for _ in range(8):
            solver.run(10)
            energies.append(analysis.kinetic_energy(grid.velocity, grid.density))
        # energy should peak and then decay (viscous dissipation)
        assert max(energies) < 1e-2
        assert energies[-1] < max(energies) * 1.01
