"""Tests of the smoothed Dirac delta kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ib import delta as delta_mod

KERNELS = [delta_mod.CosineDelta(), delta_mod.LinearDelta(), delta_mod.ThreePointDelta()]
KERNEL_IDS = ["cosine", "linear", "3point"]


@pytest.fixture(params=KERNELS, ids=KERNEL_IDS)
def kernel(request):
    return request.param


class TestWeight1D:
    def test_compact_support(self, kernel):
        half = kernel.support / 2.0
        r = np.array([-half - 0.01, half + 0.01, half + 5])
        np.testing.assert_allclose(kernel.weight_1d(r), 0.0)

    def test_even_symmetry(self, kernel, rng):
        r = rng.uniform(-3, 3, size=50)
        np.testing.assert_allclose(
            kernel.weight_1d(r), kernel.weight_1d(-r), atol=1e-14
        )

    def test_non_negative(self, kernel, rng):
        r = rng.uniform(-3, 3, size=200)
        assert (kernel.weight_1d(r) >= 0).all()

    @given(x=st.floats(-10, 10))
    @settings(max_examples=80, deadline=None)
    def test_partition_of_unity_cosine(self, x):
        """sum_j phi(x - j) = 1 for every real x (cosine kernel)."""
        k = delta_mod.CosineDelta()
        j = np.arange(np.floor(x) - 3, np.floor(x) + 5)
        assert k.weight_1d(x - j).sum() == pytest.approx(1.0, abs=1e-12)

    @given(x=st.floats(-10, 10))
    @settings(max_examples=80, deadline=None)
    def test_partition_of_unity_linear(self, x):
        k = delta_mod.LinearDelta()
        j = np.arange(np.floor(x) - 2, np.floor(x) + 4)
        assert k.weight_1d(x - j).sum() == pytest.approx(1.0, abs=1e-12)

    @given(x=st.floats(-10, 10))
    @settings(max_examples=80, deadline=None)
    def test_partition_of_unity_three_point(self, x):
        k = delta_mod.ThreePointDelta()
        j = np.arange(np.floor(x) - 3, np.floor(x) + 5)
        assert k.weight_1d(x - j).sum() == pytest.approx(1.0, abs=1e-10)

    @given(x=st.floats(-10, 10))
    @settings(max_examples=60, deadline=None)
    def test_first_moment_cosine_is_small(self, x):
        """The cosine kernel's first moment is small but not exactly zero.

        Peskin's cosine function satisfies the partition of unity and the
        even/odd sum conditions exactly; the first-moment condition only
        approximately (|m1| < 0.026 over the unit cell), which is why the
        kernel is between first- and second-order accurate.
        """
        k = delta_mod.CosineDelta()
        j = np.arange(np.floor(x) - 3, np.floor(x) + 5)
        w = k.weight_1d(x - j)
        assert abs(float(((x - j) * w).sum())) < 0.026

    @given(x=st.floats(-10, 10))
    @settings(max_examples=60, deadline=None)
    def test_even_odd_sum_condition_cosine(self, x):
        """sum over even j = sum over odd j = 1/2 (Peskin's condition)."""
        k = delta_mod.CosineDelta()
        j = np.arange(np.floor(x) - 3, np.floor(x) + 5)
        w = k.weight_1d(x - j)
        even = w[np.asarray(j) % 2 == 0].sum()
        odd = w[np.asarray(j) % 2 == 1].sum()
        assert even == pytest.approx(0.5, abs=1e-10)
        assert odd == pytest.approx(0.5, abs=1e-10)


class TestStencil:
    def test_shapes(self, kernel, rng):
        pos = rng.uniform(3, 5, size=(7, 3))
        idx, w = kernel.stencil(pos)
        s = kernel.support
        assert idx.shape == (7, s, 3)
        assert w.shape == (7, s, s, s)

    def test_weights_sum_to_one(self, kernel, rng):
        pos = rng.uniform(3, 5, size=(10, 3))
        _, w = kernel.stencil(pos)
        np.testing.assert_allclose(w.sum(axis=(1, 2, 3)), 1.0, atol=1e-10)

    def test_support_covers_influential_domain(self):
        """The cosine kernel's 4x4x4 influential domain (paper kernel 4)."""
        k = delta_mod.CosineDelta()
        idx, w = k.stencil(np.array([[5.3, 5.3, 5.3]]))
        assert idx.shape == (1, 4, 3)
        assert w.size == 64
        # support indices bracket the point
        assert idx[0, 0, 0] == 4 and idx[0, -1, 0] == 7

    def test_wrapping_into_grid(self):
        k = delta_mod.CosineDelta()
        idx, _ = k.stencil(np.array([[0.2, 0.2, 0.2]]), grid_shape=(8, 8, 8))
        assert idx.min() >= 0 and idx.max() < 8

    def test_point_on_grid_node_cosine(self):
        """A Lagrangian point exactly on a node: weights peak there."""
        k = delta_mod.CosineDelta()
        idx, w = k.stencil(np.array([[5.0, 5.0, 5.0]]))
        center = np.unravel_index(np.argmax(w[0]), w[0].shape)
        node = [idx[0, center[a], a] for a in range(3)]
        assert node == [5, 5, 5]

    def test_rejects_bad_positions_shape(self, kernel):
        with pytest.raises(ValueError, match=r"\(N, 3\)"):
            kernel.stencil(np.zeros((3, 2)))

    def test_default_delta_is_cosine(self):
        assert isinstance(delta_mod.default_delta(), delta_mod.CosineDelta)
