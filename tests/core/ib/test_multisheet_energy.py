"""Tests of multi-sheet structures and elastic-energy diagnostics."""

import numpy as np
import pytest

from repro.core.ib import forces, geometry
from repro.core.ib.fiber import FiberSheet
from repro.core.lbm.fields import FluidGrid
from repro.core.solver import SequentialLBMIBSolver
from repro.errors import ConfigurationError


class TestParallelSheets:
    def test_builds_requested_sheet_count(self):
        s = geometry.parallel_sheets((24, 16, 16), num_sheets=4, num_fibers=5, nodes_per_fiber=5)
        assert len(s.sheets) == 4
        assert s.num_nodes == 4 * 25

    def test_sheets_evenly_spaced_and_centered(self):
        s = geometry.parallel_sheets(
            (24, 16, 16), num_sheets=3, spacing=4.0, num_fibers=3, nodes_per_fiber=3
        )
        xs = [sheet.positions[0, 0, 0] for sheet in s.sheets]
        assert xs == pytest.approx([7.5, 11.5, 15.5])

    def test_rejects_overfull_stack(self):
        with pytest.raises(ConfigurationError, match="do not fit"):
            geometry.parallel_sheets((12, 16, 16), num_sheets=5, spacing=4.0)

    def test_rejects_zero_sheets(self):
        with pytest.raises(ConfigurationError):
            geometry.parallel_sheets((24, 16, 16), num_sheets=0)

    def test_multisheet_solvers_agree(self):
        from repro.parallel import CubeGrid, CubeLBMIBSolver, OpenMPLBMIBSolver

        shape = (24, 16, 16)

        def make():
            grid = FluidGrid(shape, tau=0.8)
            s = geometry.parallel_sheets(
                shape, num_sheets=2, num_fibers=4, nodes_per_fiber=4,
                stretch_coefficient=0.03,
            )
            s.sheets[0].positions[1, 1, 0] += 0.5
            return grid, s

        g0, s0 = make()
        SequentialLBMIBSolver(g0, s0).run(4)
        g1, s1 = make()
        with OpenMPLBMIBSolver(g1, s1, num_threads=3) as solver:
            solver.run(4)
        assert g0.state_allclose(g1, rtol=1e-10, atol=1e-12)
        assert s0.state_allclose(s1, rtol=1e-10, atol=1e-12)
        g2, s2 = make()
        cg = CubeGrid.from_fluid_grid(g2, cube_size=4)
        CubeLBMIBSolver(cg, s2, num_threads=4).run(4)
        assert g0.state_allclose(cg.to_fluid_grid(), rtol=1e-10, atol=1e-12)

    def test_sheets_interact_through_fluid(self):
        """Perturbing one sheet eventually moves its neighbour."""
        shape = (24, 16, 16)
        grid = FluidGrid(shape, tau=0.8)
        s = geometry.parallel_sheets(
            shape, num_sheets=2, spacing=3.0, num_fibers=5, nodes_per_fiber=5,
            stretch_coefficient=0.05,
        )
        s.sheets[0].positions[2, 2, 0] += 1.0
        before = s.sheets[1].positions.copy()
        SequentialLBMIBSolver(grid, s).run(30)
        assert np.abs(s.sheets[1].positions - before).max() > 1e-6


class TestElasticEnergy:
    def _rest_sheet(self):
        pos = np.zeros((4, 4, 3))
        pos[..., 1] = np.arange(4)[:, None]
        pos[..., 2] = np.arange(4)[None, :]
        return FiberSheet(pos, stretch_coefficient=0.5, bend_coefficient=0.25)

    def test_zero_at_rest(self):
        sheet = self._rest_sheet()
        assert sheet.stretch_energy() == pytest.approx(0.0, abs=1e-25)
        assert sheet.bend_energy() == pytest.approx(0.0, abs=1e-25)
        assert sheet.max_stretch_ratio() == pytest.approx(1.0)

    def test_stretch_energy_of_one_extended_link(self):
        # a single fiber, so stretching one end link affects nothing else
        pos = np.zeros((1, 4, 3))
        pos[0, :, 2] = np.arange(4)
        sheet = FiberSheet(pos, stretch_coefficient=0.5, bend_coefficient=0.0)
        sheet.positions[0, 3, 2] += 0.5  # end link now 1.5 long (rest 1)
        assert sheet.stretch_energy() == pytest.approx(0.5 * 0.5 * 0.25)
        assert sheet.max_stretch_ratio() == pytest.approx(1.5)

    def test_bend_energy_of_kink(self):
        sheet = self._rest_sheet()
        sheet.positions[0, 1, 0] += 0.1  # curvature appears around node 1
        assert sheet.bend_energy() > 0

    def test_force_is_negative_energy_gradient(self):
        """Central-difference check of F = -dE/dX for one coordinate."""
        sheet = self._rest_sheet()
        rng = np.random.default_rng(1)
        sheet.positions += 0.1 * rng.standard_normal(sheet.positions.shape)
        forces.compute_bending_force(sheet)
        forces.compute_stretching_force(sheet)
        forces.compute_elastic_force(sheet)
        h = 1e-6
        for idx in [(1, 2, 0), (2, 1, 1), (0, 0, 2)]:
            up = sheet.copy()
            up.positions[idx] += h
            down = sheet.copy()
            down.positions[idx] -= h
            grad = (up.elastic_energy() - down.elastic_energy()) / (2 * h)
            assert sheet.elastic_force[idx] == pytest.approx(-grad, rel=1e-4, abs=1e-9)

    def test_energy_dissipates_in_fluid(self):
        shape = (16, 12, 12)
        grid = FluidGrid(shape, tau=0.8)
        s = geometry.flat_sheet(
            shape, num_fibers=5, nodes_per_fiber=5, stretch_coefficient=0.03
        )
        s.sheets[0].positions[2, 2, 0] += 0.8
        e0 = s.elastic_energy()
        SequentialLBMIBSolver(grid, s).run(60)
        assert s.elastic_energy() < e0

    def test_masked_nodes_excluded(self):
        sheet = self._rest_sheet()
        sheet.positions[0, 3, 2] += 5.0  # huge stretch on the end link
        sheet.active[0, 3] = False  # but the node is inactive
        assert sheet.stretch_energy() == pytest.approx(0.0, abs=1e-20)
        assert sheet.max_stretch_ratio() == pytest.approx(1.0)

    def test_structure_aggregates(self):
        s = geometry.parallel_sheets((24, 16, 16), num_sheets=2, num_fibers=4, nodes_per_fiber=4)
        s.sheets[0].positions[0, 0, 2] += 0.5
        assert s.elastic_energy() == pytest.approx(
            s.sheets[0].elastic_energy() + s.sheets[1].elastic_energy()
        )
        assert s.max_stretch_ratio() >= s.sheets[1].max_stretch_ratio()
