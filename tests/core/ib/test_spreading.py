"""Tests of force spreading (paper kernel 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import reference
from repro.core.ib import spreading
from repro.core.ib.delta import CosineDelta, LinearDelta
from repro.core.ib.fiber import FiberSheet


def _random_sheet(seed, grid_shape=(8, 8, 8), nf=3, nn=4):
    rng = np.random.default_rng(seed)
    pos = rng.uniform(2.0, min(grid_shape) - 3.0, size=(nf, nn, 3))
    sheet = FiberSheet(pos, stretch_coefficient=0.02, bend_coefficient=0.001)
    sheet.elastic_force[...] = rng.standard_normal(sheet.elastic_force.shape)
    return sheet


class TestFlattenStencil:
    def test_flat_indices_match_coordinates(self, cosine_delta, rng):
        grid_shape = (8, 6, 5)
        pos = rng.uniform(2, 3, size=(4, 3))
        idx, w = cosine_delta.stencil(pos, grid_shape=grid_shape)
        flat, fw = spreading.flatten_stencil(idx, w, grid_shape)
        assert flat.shape == (4, 64)
        assert fw.shape == (4, 64)
        # check one entry by hand
        n, a, b, c = 2, 1, 2, 3
        expect = (
            idx[n, a, 0] * (6 * 5) + idx[n, b, 1] * 5 + idx[n, c, 2]
        )
        assert flat[n, (a * 4 + b) * 4 + c] == expect
        assert fw[n, (a * 4 + b) * 4 + c] == w[n, a, b, c]

    def test_indices_within_grid(self, cosine_delta, rng):
        grid_shape = (6, 6, 6)
        pos = rng.uniform(0, 6, size=(10, 3))
        idx, w = cosine_delta.stencil(pos, grid_shape=grid_shape)
        flat, _ = spreading.flatten_stencil(idx, w, grid_shape)
        assert flat.min() >= 0 and flat.max() < 216


class TestSpreadValues:
    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_matches_loop_reference(self, seed):
        sheet = _random_sheet(seed)
        delta = CosineDelta()
        target = np.zeros((3, 8, 8, 8))
        spreading.spread_forces(sheet, delta, target)
        expected = reference.spread_loop(sheet, delta, (8, 8, 8))
        np.testing.assert_allclose(target, expected, rtol=1e-10, atol=1e-13)

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_total_force_conserved(self, seed):
        """Partition of unity: the grid receives exactly sum(f) * dA."""
        sheet = _random_sheet(seed)
        target = np.zeros((3, 8, 8, 8))
        spreading.spread_forces(sheet, CosineDelta(), target)
        expected = sheet.elastic_force.sum(axis=(0, 1)) * sheet.area_element
        np.testing.assert_allclose(
            target.sum(axis=(1, 2, 3)), expected, rtol=1e-10, atol=1e-12
        )

    def test_accumulates_rather_than_overwrites(self):
        sheet = _random_sheet(5)
        target = np.zeros((3, 8, 8, 8))
        spreading.spread_forces(sheet, CosineDelta(), target)
        once = target.copy()
        spreading.spread_forces(sheet, CosineDelta(), target)
        np.testing.assert_allclose(target, 2 * once, rtol=1e-12)

    def test_periodic_wrap_spreading(self):
        """A point near the boundary exerts force on wrapped nodes."""
        pos = np.array([[[0.5, 4.0, 4.0]]])
        sheet = FiberSheet(pos)
        sheet.elastic_force[...] = 1.0
        target = np.zeros((3, 8, 8, 8))
        spreading.spread_forces(sheet, CosineDelta(), target)
        assert np.abs(target[:, 7]).sum() > 0  # wrapped to the far face

    def test_rows_restriction(self):
        sheet = _random_sheet(9)
        full = np.zeros((3, 8, 8, 8))
        spreading.spread_forces(sheet, CosineDelta(), full)
        parts = np.zeros((3, 8, 8, 8))
        spreading.spread_forces(sheet, CosineDelta(), parts, rows=[0, 2])
        spreading.spread_forces(sheet, CosineDelta(), parts, rows=[1])
        np.testing.assert_allclose(parts, full, rtol=1e-12, atol=1e-15)

    def test_inactive_nodes_do_not_spread(self):
        sheet = _random_sheet(12)
        sheet.active[1, 1] = False
        target = np.zeros((3, 8, 8, 8))
        spreading.spread_forces(sheet, CosineDelta(), target)
        active_only = sheet.elastic_force[sheet.active].sum(axis=0)
        np.testing.assert_allclose(
            target.sum(axis=(1, 2, 3)),
            active_only * sheet.area_element,
            rtol=1e-10,
        )

    def test_empty_positions_are_fine(self):
        target = np.zeros((3, 4, 4, 4))
        out = spreading.spread_values(
            np.zeros((0, 3)), np.zeros((0, 3)), CosineDelta(), target
        )
        assert out is target and not target.any()

    def test_linear_delta_touches_8_nodes(self):
        pos = np.array([[[3.3, 3.3, 3.3]]])
        sheet = FiberSheet(pos)
        sheet.elastic_force[...] = 1.0
        target = np.zeros((3, 8, 8, 8))
        spreading.spread_forces(sheet, LinearDelta(), target)
        assert (np.abs(target[0]) > 1e-12).sum() == 8


class TestScatterDispatch:
    """Kernel-4 scatter implementation selection (bincount vs add.at)."""

    @pytest.fixture(autouse=True)
    def _auto_dispatch(self, monkeypatch):
        """Neutralize any LBMIB_SCATTER override for these tests."""
        monkeypatch.setattr(spreading, "_scatter_override", "auto")

    def test_heuristic_picks_by_contribution_density(self):
        """bincount pays O(grid nodes) per component for its dense
        output, so it only wins once contributions cover the grid."""
        assert spreading.scatter_method(1000, 999) == "add_at"
        assert spreading.scatter_method(1000, 1000) == "bincount"
        assert spreading.scatter_method(1000, 50_000) == "bincount"
        # The Table-I profiling stencil: 43k contributions on 63k nodes.
        assert spreading.scatter_method(63_488, 43_264) == "add_at"

    def test_override_forces_implementation(self, monkeypatch):
        spreading.set_scatter_method("bincount")
        assert spreading.scatter_method(1000, 1) == "bincount"
        spreading.set_scatter_method("add_at")
        assert spreading.scatter_method(1000, 10**6) == "add_at"
        spreading.set_scatter_method("auto")
        assert spreading.scatter_method(1000, 1) == "add_at"
        with pytest.raises(ValueError):
            spreading.set_scatter_method("magic")

    def _stencil(self, seed=3, grid_shape=(8, 8, 8)):
        sheet = _random_sheet(seed, grid_shape=grid_shape)
        delta = CosineDelta()
        pos = sheet.positions[sheet.active]
        idx, w = delta.stencil(pos, grid_shape=grid_shape)
        flat_idx, flat_w = spreading.flatten_stencil(idx, w, grid_shape)
        values = np.random.default_rng(seed).standard_normal((pos.shape[0], 3))
        return flat_idx, flat_w, values

    def test_forced_methods_are_bit_identical(self):
        """Both implementations accumulate contributions in strict
        input order — exact equality, not a tolerance."""
        flat_idx, flat_w, values = self._stencil()
        a = np.zeros((3, 8, 8, 8))
        b = np.zeros_like(a)
        spreading.scatter_flat(flat_idx, flat_w, values, a, method="add_at")
        spreading.scatter_flat(flat_idx, flat_w, values, b, method="bincount")
        assert np.array_equal(a, b)
        assert a.any()

    def test_auto_dispatch_matches_forced(self):
        flat_idx, flat_w, values = self._stencil()
        picked = spreading.scatter_method(8**3, flat_idx.size)
        auto = np.zeros((3, 8, 8, 8))
        forced = np.zeros_like(auto)
        spreading.scatter_flat(flat_idx, flat_w, values, auto)
        spreading.scatter_flat(flat_idx, flat_w, values, forced, method=picked)
        assert np.array_equal(auto, forced)

    def test_non_contiguous_target_falls_back_safely(self):
        """add.at needs a flat C-order view; a non-contiguous target
        silently uses the bincount path instead of scattering into a
        temporary copy."""
        flat_idx, flat_w, values = self._stencil()
        contiguous = np.zeros((3, 8, 8, 8))
        strided = np.zeros((8, 8, 8, 3)).transpose(3, 0, 1, 2)
        assert not strided.flags.c_contiguous
        spreading.scatter_flat(flat_idx, flat_w, values, contiguous, method="add_at")
        spreading.scatter_flat(flat_idx, flat_w, values, strided, method="add_at")
        assert np.array_equal(strided, contiguous)


class TestEnvOverrideValidation:
    """LBMIB_SCATTER is validated at read time, not at first dispatch."""

    @pytest.mark.parametrize("value", ["auto", "bincount", "add_at"])
    def test_valid_spellings_accepted(self, monkeypatch, value):
        monkeypatch.setenv("LBMIB_SCATTER", value)
        assert spreading._env_scatter_override() == value

    def test_unset_defaults_to_auto(self, monkeypatch):
        monkeypatch.delenv("LBMIB_SCATTER", raising=False)
        assert spreading._env_scatter_override() == "auto"

    @pytest.mark.parametrize("value", ["addat", "bin_count", "np.add.at", ""])
    def test_unknown_value_fails_loudly(self, monkeypatch, value):
        from repro.errors import ConfigurationError

        monkeypatch.setenv("LBMIB_SCATTER", value)
        with pytest.raises(ConfigurationError) as excinfo:
            spreading._env_scatter_override()
        # The message names every allowed method — a typo is a
        # one-line fix, not an archaeology session.
        message = str(excinfo.value)
        for allowed in ("auto", "bincount", "add_at"):
            assert allowed in message

    def test_error_is_also_a_value_error(self, monkeypatch):
        """Callers catching ValueError (the pre-typed contract) still
        work."""
        monkeypatch.setenv("LBMIB_SCATTER", "magic")
        with pytest.raises(ValueError):
            spreading._env_scatter_override()
