"""Tests of the fiber force kernels (paper kernels 1-3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import reference
from repro.core.ib import forces
from repro.core.ib.fiber import FiberSheet


def _sheet_from_seed(seed: int, nf: int = 5, nn: int = 6, masked: bool = False):
    rng = np.random.default_rng(seed)
    pos = np.zeros((nf, nn, 3))
    pos[..., 1] = np.arange(nf)[:, None]
    pos[..., 2] = np.arange(nn)[None, :]
    pos += 0.2 * rng.standard_normal(pos.shape)
    active = None
    if masked:
        active = rng.random((nf, nn)) > 0.2
        active[0, 0] = True  # keep at least one node
    return FiberSheet(
        pos, stretch_coefficient=0.02, bend_coefficient=0.003, active=active
    )


class TestSecondDifference:
    def test_interior_values(self):
        x = np.arange(6.0).reshape(1, 6, 1) ** 2
        d2 = forces.second_difference(x, axis=1)
        np.testing.assert_allclose(d2[0, 1:-1, 0], 2.0)
        assert d2[0, 0, 0] == 0.0 and d2[0, -1, 0] == 0.0

    def test_padded_form_covers_ends(self):
        x = np.ones((1, 4, 1))
        d2 = forces.second_difference(x, axis=1, padded=True)
        np.testing.assert_allclose(d2[0, :, 0], [-1.0, 0.0, 0.0, -1.0])

    def test_padded_rejects_mask(self):
        with pytest.raises(ValueError, match="interior"):
            forces.second_difference(
                np.ones((2, 3, 1)), axis=0, valid=np.ones((2, 3), bool), padded=True
            )

    def test_short_axis_gives_zero(self):
        d2 = forces.second_difference(np.ones((1, 2, 3)), axis=1)
        assert not d2.any()

    def test_mask_invalidates_stencil(self):
        x = np.arange(5.0).reshape(1, 5, 1) ** 2
        valid = np.ones((1, 5), dtype=bool)
        valid[0, 2] = False
        d2 = forces.second_difference(x, axis=1, valid=valid)
        # nodes 1, 2, 3 all have node 2 in their stencil -> zeroed
        assert not d2[0, 1:4].any()


class TestAgainstReference:
    @given(seed=st.integers(0, 2**31), masked=st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_bending_matches_loop(self, seed, masked):
        sheet = _sheet_from_seed(seed, masked=masked)
        forces.compute_bending_force(sheet)
        expected = reference.bending_force_loop(sheet)
        np.testing.assert_allclose(
            sheet.bending_force, expected, rtol=1e-10, atol=1e-13
        )

    @given(seed=st.integers(0, 2**31), masked=st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_stretching_matches_loop(self, seed, masked):
        sheet = _sheet_from_seed(seed, masked=masked)
        forces.compute_stretching_force(sheet)
        expected = reference.stretching_force_loop(sheet)
        np.testing.assert_allclose(
            sheet.stretching_force, expected, rtol=1e-10, atol=1e-13
        )


class TestPhysicalInvariants:
    def test_flat_sheet_has_no_force(self):
        pos = np.zeros((5, 5, 3))
        pos[..., 1] = np.arange(5)[:, None]
        pos[..., 2] = np.arange(5)[None, :]
        sheet = FiberSheet(pos, stretch_coefficient=0.1, bend_coefficient=0.1)
        forces.compute_bending_force(sheet)
        forces.compute_stretching_force(sheet)
        forces.compute_elastic_force(sheet)
        assert np.abs(sheet.elastic_force).max() < 1e-13

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_internal_forces_sum_to_zero(self, seed):
        """Bending + stretching are internal: total momentum input is 0."""
        sheet = _sheet_from_seed(seed)
        forces.compute_bending_force(sheet)
        forces.compute_stretching_force(sheet)
        forces.compute_elastic_force(sheet)
        np.testing.assert_allclose(
            sheet.elastic_force.sum(axis=(0, 1)), 0.0, atol=1e-12
        )

    def test_stretched_link_pulls_nodes_together(self):
        pos = np.zeros((1, 2, 3))
        pos[0, 1, 2] = 2.0  # rest spacing defaults to 2.0 then
        sheet = FiberSheet(pos, stretch_coefficient=1.0, rest_spacing_fiber=1.0)
        forces.compute_stretching_force(sheet)
        assert sheet.stretching_force[0, 0, 2] > 0  # pulled toward node 1
        assert sheet.stretching_force[0, 1, 2] < 0

    def test_compressed_link_pushes_nodes_apart(self):
        pos = np.zeros((1, 2, 3))
        pos[0, 1, 2] = 0.5
        sheet = FiberSheet(pos, stretch_coefficient=1.0, rest_spacing_fiber=1.0)
        forces.compute_stretching_force(sheet)
        assert sheet.stretching_force[0, 0, 2] < 0
        assert sheet.stretching_force[0, 1, 2] > 0

    def test_bending_force_opposes_kink(self):
        pos = np.zeros((1, 5, 3))
        pos[0, :, 2] = np.arange(5)
        pos[0, 2, 0] = 0.5  # kink the middle node out of line
        sheet = FiberSheet(pos, bend_coefficient=1.0)
        forces.compute_bending_force(sheet)
        assert sheet.bending_force[0, 2, 0] < 0  # restoring

    def test_coincident_nodes_produce_no_nan(self):
        pos = np.zeros((1, 3, 3))  # all nodes coincide
        sheet = FiberSheet(pos, stretch_coefficient=1.0, rest_spacing_fiber=1.0)
        forces.compute_stretching_force(sheet)
        assert np.isfinite(sheet.stretching_force).all()


class TestRowsRestriction:
    def test_rows_write_only_selected_fibers(self):
        sheet = _sheet_from_seed(7)
        sheet.bending_force[...] = 99.0
        forces.compute_bending_force(sheet, rows=[1, 3])
        assert (sheet.bending_force[0] == 99.0).all()
        assert (sheet.bending_force[2] == 99.0).all()
        assert not (sheet.bending_force[1] == 99.0).all()

    def test_row_union_equals_full_computation(self):
        full = _sheet_from_seed(11)
        forces.compute_bending_force(full)
        forces.compute_stretching_force(full)
        forces.compute_elastic_force(full)

        split = _sheet_from_seed(11)
        for rows in ([0, 2, 4], [1, 3]):
            forces.compute_bending_force(split, rows=rows)
            forces.compute_stretching_force(split, rows=rows)
            forces.compute_elastic_force(split, rows=rows)
        np.testing.assert_allclose(split.elastic_force, full.elastic_force)


class TestTether:
    def test_tether_pulls_toward_anchor(self):
        pos = np.zeros((2, 2, 3))
        pos[..., 1] = np.arange(2)[:, None]
        pos[..., 2] = np.arange(2)[None, :]
        teth = np.zeros((2, 2), dtype=bool)
        teth[0, 0] = True
        sheet = FiberSheet(
            pos, stretch_coefficient=0.0, bend_coefficient=0.0,
            tethered=teth, tether_coefficient=2.0,
        )
        sheet.positions[0, 0, 0] = 0.5  # displaced from anchor
        forces.compute_bending_force(sheet)
        forces.compute_stretching_force(sheet)
        forces.compute_elastic_force(sheet)
        assert sheet.elastic_force[0, 0, 0] == pytest.approx(-1.0)
        assert not sheet.elastic_force[1].any()

    def test_inactive_nodes_carry_no_force(self):
        sheet = _sheet_from_seed(3, masked=True)
        forces.compute_bending_force(sheet)
        forces.compute_stretching_force(sheet)
        forces.compute_elastic_force(sheet)
        assert not sheet.elastic_force[~sheet.active].any()
