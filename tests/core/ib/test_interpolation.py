"""Tests of velocity interpolation (half of paper kernel 8)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import reference
from repro.core.ib import interpolation, spreading
from repro.core.ib.delta import CosineDelta
from repro.core.ib.fiber import FiberSheet


def _sheet(seed, grid=(8, 8, 8), nf=3, nn=4):
    rng = np.random.default_rng(seed)
    pos = rng.uniform(2.0, min(grid) - 3.0, size=(nf, nn, 3))
    return FiberSheet(pos)


class TestInterpolation:
    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_matches_loop_reference(self, seed):
        rng = np.random.default_rng(seed + 1)
        sheet = _sheet(seed)
        velocity = rng.standard_normal((3, 8, 8, 8))
        interpolation.interpolate_velocity(sheet, CosineDelta(), velocity)
        expected = reference.interpolate_loop(sheet, CosineDelta(), velocity)
        np.testing.assert_allclose(sheet.velocity, expected, rtol=1e-10, atol=1e-13)

    def test_constant_field_interpolates_exactly(self):
        """Partition of unity makes constants exact."""
        sheet = _sheet(3)
        velocity = np.zeros((3, 8, 8, 8))
        velocity[0] = 0.7
        velocity[2] = -0.1
        out = interpolation.interpolate_values(
            sheet.positions.reshape(-1, 3), velocity, CosineDelta()
        )
        np.testing.assert_allclose(out[:, 0], 0.7, rtol=1e-12)
        np.testing.assert_allclose(out[:, 1], 0.0, atol=1e-13)
        np.testing.assert_allclose(out[:, 2], -0.1, rtol=1e-12)

    def test_linear_field_nearly_exact(self):
        """The cosine kernel reproduces linear fields to ~1e-2."""
        n = 12
        velocity = np.zeros((3, n, n, n))
        velocity[0] = 0.01 * np.arange(n)[:, None, None]
        pos = np.array([[4.37, 6.0, 6.0], [5.5, 6.2, 5.9]])
        out = interpolation.interpolate_values(pos, velocity, CosineDelta())
        np.testing.assert_allclose(out[:, 0], 0.01 * pos[:, 0], rtol=2e-2)

    def test_rows_restriction(self):
        rng = np.random.default_rng(0)
        sheet = _sheet(5)
        velocity = rng.standard_normal((3, 8, 8, 8))
        sheet.velocity[...] = 42.0
        interpolation.interpolate_velocity(sheet, CosineDelta(), velocity, rows=[1])
        assert (sheet.velocity[0] == 42.0).all()
        assert not (sheet.velocity[1] == 42.0).any()

    def test_empty_positions(self):
        out = interpolation.interpolate_values(
            np.zeros((0, 3)), np.zeros((3, 4, 4, 4)), CosineDelta()
        )
        assert out.shape == (0, 3)

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=10, deadline=None)
    def test_spread_interpolate_adjointness(self, seed):
        """<spread(F), u> = dA * <F, interp(u)> — the discrete IB duality.

        This identity is what makes the coupled scheme conserve energy
        transfer between the structure and the fluid exactly.
        """
        rng = np.random.default_rng(seed + 2)
        grid_shape = (8, 8, 8)
        positions = rng.uniform(2, 5, size=(10, 3))
        f_lag = rng.standard_normal((10, 3))
        u_eul = rng.standard_normal((3,) + grid_shape)
        delta = CosineDelta()

        spread = np.zeros((3,) + grid_shape)
        spreading.spread_values(positions, f_lag, delta, spread, scale=1.0)
        lhs = float((spread * u_eul).sum())

        interp = interpolation.interpolate_values(positions, u_eul, delta)
        rhs = float((f_lag * interp).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10, abs=1e-12)
