"""Tests of the fiber-sheet data structures (paper Figure 4)."""

import numpy as np
import pytest

from repro.core.ib.fiber import FiberSheet, ImmersedStructure
from repro.errors import ConfigurationError


def _flat_positions(nf=4, nn=5):
    pos = np.zeros((nf, nn, 3))
    pos[..., 1] = np.arange(nf)[:, None]
    pos[..., 2] = np.arange(nn)[None, :]
    return pos


class TestConstruction:
    def test_counts(self):
        sheet = FiberSheet(_flat_positions(8, 5))
        assert sheet.num_fibers == 8
        assert sheet.nodes_per_fiber == 5
        assert sheet.num_nodes == 40
        assert sheet.num_active_nodes == 40

    def test_figure4_shape(self):
        """Paper Figure 4: a sheet of 8 fibers with 5 nodes each."""
        sheet = FiberSheet(_flat_positions(8, 5))
        assert sheet.positions.shape == (8, 5, 3)

    def test_rest_spacings_from_geometry(self):
        pos = _flat_positions()
        pos[..., 1] *= 2.0  # fibers 2 apart
        pos[..., 2] *= 0.5  # nodes 0.5 apart
        sheet = FiberSheet(pos)
        assert sheet.rest_spacing_cross == pytest.approx(2.0)
        assert sheet.rest_spacing_fiber == pytest.approx(0.5)
        assert sheet.area_element == pytest.approx(1.0)

    def test_explicit_rest_spacings_kept(self):
        sheet = FiberSheet(
            _flat_positions(), rest_spacing_fiber=0.3, rest_spacing_cross=0.7
        )
        assert sheet.rest_spacing_fiber == 0.3
        assert sheet.rest_spacing_cross == 0.7

    def test_buffers_zeroed(self):
        sheet = FiberSheet(_flat_positions())
        assert not sheet.bending_force.any()
        assert not sheet.stretching_force.any()
        assert not sheet.elastic_force.any()
        assert not sheet.velocity.any()

    def test_anchors_copy_initial_positions(self):
        sheet = FiberSheet(_flat_positions())
        np.testing.assert_array_equal(sheet.anchors, sheet.positions)
        sheet.positions += 1.0
        assert (sheet.anchors != sheet.positions).all()

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError, match="shape"):
            FiberSheet(np.zeros((4, 5)))

    def test_rejects_negative_coefficients(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            FiberSheet(_flat_positions(), stretch_coefficient=-1.0)

    def test_rejects_bad_active_mask(self):
        with pytest.raises(ConfigurationError, match="active"):
            FiberSheet(_flat_positions(4, 5), active=np.ones((3, 5), dtype=bool))

    def test_rejects_tethered_without_stiffness(self):
        teth = np.zeros((4, 5), dtype=bool)
        teth[2, 2] = True
        with pytest.raises(ConfigurationError, match="tether_coefficient"):
            FiberSheet(_flat_positions(), tethered=teth)

    def test_single_node_sheet_allowed(self):
        sheet = FiberSheet(np.zeros((1, 1, 3)))
        assert sheet.rest_spacing_fiber == 1.0  # fallback


class TestMasksAndViews:
    def test_active_positions_filtering(self):
        active = np.ones((4, 5), dtype=bool)
        active[0, 0] = False
        sheet = FiberSheet(_flat_positions(), active=active)
        assert sheet.active_positions().shape == (19, 3)
        assert sheet.num_active_nodes == 19

    def test_centroid(self):
        sheet = FiberSheet(_flat_positions(3, 3))
        np.testing.assert_allclose(sheet.centroid(), [0.0, 1.0, 1.0])

    def test_reset_forces(self):
        sheet = FiberSheet(_flat_positions())
        sheet.bending_force[...] = 1.0
        sheet.stretching_force[...] = 2.0
        sheet.elastic_force[...] = 3.0
        sheet.reset_forces()
        assert not sheet.bending_force.any()
        assert not sheet.stretching_force.any()
        assert not sheet.elastic_force.any()


class TestCopyCompare:
    def test_copy_is_deep(self, small_sheet):
        clone = small_sheet.copy()
        assert clone.state_allclose(small_sheet)
        clone.positions[0, 0, 0] += 1.0
        assert not clone.state_allclose(small_sheet)

    def test_copy_preserves_parameters(self, small_sheet):
        clone = small_sheet.copy()
        assert clone.stretch_coefficient == small_sheet.stretch_coefficient
        assert clone.bend_coefficient == small_sheet.bend_coefficient
        assert clone.rest_spacing_fiber == small_sheet.rest_spacing_fiber


class TestImmersedStructure:
    def test_requires_a_sheet(self):
        with pytest.raises(ConfigurationError):
            ImmersedStructure([])

    def test_multi_sheet_counts(self):
        s = ImmersedStructure(
            [FiberSheet(_flat_positions(4, 5)), FiberSheet(_flat_positions(2, 3))]
        )
        assert s.num_nodes == 20 + 6
        assert s.num_fibers == 6

    def test_reset_forces_hits_all_sheets(self):
        s = ImmersedStructure([FiberSheet(_flat_positions()) for _ in range(2)])
        for sheet in s.sheets:
            sheet.elastic_force[...] = 1.0
        s.reset_forces()
        assert not any(sheet.elastic_force.any() for sheet in s.sheets)

    def test_copy_and_compare(self, small_structure):
        clone = small_structure.copy()
        assert clone.state_allclose(small_structure)
        clone.sheets[0].positions += 0.1
        assert not clone.state_allclose(small_structure)
