"""Tests of fiber motion (paper kernel 8)."""

import numpy as np
import pytest

from repro.core.ib import motion
from repro.core.ib.delta import CosineDelta
from repro.core.ib.fiber import FiberSheet


def _sheet(grid=(10, 10, 10)):
    pos = np.zeros((3, 3, 3))
    pos[..., 0] = 5.0
    pos[..., 1] = 4.0 + np.arange(3)[:, None]
    pos[..., 2] = 4.0 + np.arange(3)[None, :]
    return FiberSheet(pos)


class TestMoveFibers:
    def test_uniform_flow_advects_exactly(self):
        sheet = _sheet()
        velocity = np.zeros((3, 10, 10, 10))
        velocity[0] = 0.25
        before = sheet.positions.copy()
        motion.move_fibers(sheet, CosineDelta(), velocity, dt=1.0)
        np.testing.assert_allclose(sheet.positions[..., 0], before[..., 0] + 0.25, rtol=1e-12)
        np.testing.assert_allclose(sheet.positions[..., 1:], before[..., 1:], atol=1e-13)

    def test_dt_scales_displacement(self):
        velocity = np.zeros((3, 10, 10, 10))
        velocity[1] = 0.1
        a, b = _sheet(), _sheet()
        motion.move_fibers(a, CosineDelta(), velocity, dt=1.0)
        motion.move_fibers(b, CosineDelta(), velocity, dt=0.5)
        da = a.positions[..., 1] - 4.0 - np.arange(3)[:, None]
        db = b.positions[..., 1] - 4.0 - np.arange(3)[:, None]
        np.testing.assert_allclose(da, 2 * db, rtol=1e-12)

    def test_velocity_buffer_updated(self):
        sheet = _sheet()
        velocity = np.zeros((3, 10, 10, 10))
        velocity[2] = -0.05
        motion.move_fibers(sheet, CosineDelta(), velocity)
        np.testing.assert_allclose(sheet.velocity[..., 2], -0.05, rtol=1e-12)

    def test_rows_restriction_moves_only_selected(self):
        sheet = _sheet()
        velocity = np.zeros((3, 10, 10, 10))
        velocity[0] = 0.3
        before = sheet.positions.copy()
        motion.move_fibers(sheet, CosineDelta(), velocity, rows=[0])
        assert (sheet.positions[0, :, 0] > before[0, :, 0]).all()
        np.testing.assert_array_equal(sheet.positions[1:], before[1:])

    def test_inactive_nodes_do_not_move(self):
        sheet = _sheet()
        sheet.active[1, 1] = False
        velocity = np.zeros((3, 10, 10, 10))
        velocity[0] = 0.3
        before = sheet.positions.copy()
        motion.move_fibers(sheet, CosineDelta(), velocity)
        np.testing.assert_array_equal(sheet.positions[1, 1], before[1, 1])

    def test_zero_velocity_is_a_fixed_point(self):
        sheet = _sheet()
        before = sheet.positions.copy()
        motion.move_fibers(sheet, CosineDelta(), np.zeros((3, 10, 10, 10)))
        np.testing.assert_array_equal(sheet.positions, before)
