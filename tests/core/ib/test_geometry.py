"""Tests of the structure geometry builders."""

import numpy as np
import pytest

from repro.core.ib import geometry
from repro.errors import ConfigurationError


class TestSheetNodeGrid:
    def test_shape_and_plane(self):
        pos = geometry.sheet_node_grid(4, 6, 3.0, 5.0, (8.0, 8.0, 8.0), normal_axis=0)
        assert pos.shape == (4, 6, 3)
        np.testing.assert_allclose(pos[..., 0], 8.0)

    def test_spans(self):
        pos = geometry.sheet_node_grid(5, 5, 4.0, 2.0, (0.0, 10.0, 10.0), normal_axis=0)
        assert pos[..., 1].max() - pos[..., 1].min() == pytest.approx(4.0)
        assert pos[..., 2].max() - pos[..., 2].min() == pytest.approx(2.0)

    def test_centered(self):
        pos = geometry.sheet_node_grid(5, 5, 4.0, 4.0, (1.0, 7.0, 9.0))
        np.testing.assert_allclose(pos.mean(axis=(0, 1)), [1.0, 7.0, 9.0])

    def test_normal_axis_variants(self):
        for axis in (0, 1, 2):
            pos = geometry.sheet_node_grid(3, 3, 2.0, 2.0, (5.0, 5.0, 5.0), normal_axis=axis)
            assert np.ptp(pos[..., axis]) == 0.0

    def test_rejects_bad_axis(self):
        with pytest.raises(ConfigurationError):
            geometry.sheet_node_grid(3, 3, 1.0, 1.0, (0, 0, 0), normal_axis=3)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            geometry.sheet_node_grid(0, 3, 1.0, 1.0, (0, 0, 0))


class TestFlatSheet:
    def test_defaults_fit_in_box(self):
        s = geometry.flat_sheet((24, 24, 24))
        pos = s.sheets[0].positions
        assert (pos >= 0).all() and (pos <= 23).all()

    def test_paper_figure4_dimensions(self):
        s = geometry.flat_sheet((32, 32, 32), num_fibers=8, nodes_per_fiber=5)
        assert s.sheets[0].num_fibers == 8
        assert s.sheets[0].nodes_per_fiber == 5

    def test_too_large_sheet_rejected(self):
        with pytest.raises(ConfigurationError, match="leaves the fluid box"):
            geometry.flat_sheet((8, 8, 8), width=20.0, height=20.0)

    def test_coefficients_forwarded(self):
        s = geometry.flat_sheet(
            (24, 24, 24), stretch_coefficient=0.5, bend_coefficient=0.25
        )
        assert s.sheets[0].stretch_coefficient == 0.5
        assert s.sheets[0].bend_coefficient == 0.25

    def test_all_nodes_active_untethered(self):
        s = geometry.flat_sheet((24, 24, 24))
        assert s.sheets[0].active.all()
        assert not s.sheets[0].tethered.any()


class TestCircularPlate:
    def test_active_mask_is_a_disk(self):
        s = geometry.circular_plate((32, 32, 32), num_fibers=15, nodes_per_fiber=15)
        sheet = s.sheets[0]
        assert sheet.active.sum() < sheet.num_nodes  # corners cut
        # the disk contains the centre and not the corner
        assert sheet.active[7, 7]
        assert not sheet.active[0, 0]

    def test_fastened_middle_region(self):
        """Paper Figure 1: the plate is fastened in the middle region."""
        s = geometry.circular_plate(
            (32, 32, 32), num_fibers=15, nodes_per_fiber=15,
            fastened_radius_fraction=0.3,
        )
        sheet = s.sheets[0]
        assert sheet.tethered.any()
        assert sheet.tethered.sum() < sheet.active.sum()
        assert sheet.tethered[7, 7]  # centre is fastened
        assert (sheet.tethered <= sheet.active).all()
        assert sheet.tether_coefficient > 0

    def test_no_fastening_when_fraction_zero(self):
        s = geometry.circular_plate(
            (32, 32, 32), fastened_radius_fraction=0.0, num_fibers=9, nodes_per_fiber=9
        )
        # only the exact-centre node(s) may be caught; radius 0 catches none
        # for an even grid offset, but must never exceed the active disk
        sheet = s.sheets[0]
        assert (sheet.tethered <= sheet.active).all()

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError, match="fraction"):
            geometry.circular_plate((32, 32, 32), fastened_radius_fraction=1.5)

    def test_radius_respected(self):
        s = geometry.circular_plate(
            (40, 40, 40), num_fibers=21, nodes_per_fiber=21, radius=6.0
        )
        sheet = s.sheets[0]
        center = np.asarray([19.5, 19.5])
        d = np.sqrt(
            (sheet.positions[..., 1] - center[0]) ** 2
            + (sheet.positions[..., 2] - center[1]) ** 2
        )
        assert (d[sheet.active] <= 6.0 + 1e-6).all()
        assert (d[~sheet.active] > 6.0 - 1e-6).all()
