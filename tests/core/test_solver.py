"""Tests of the sequential solver (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.ib import geometry
from repro.core.lbm.boundaries import BounceBackWall
from repro.core.lbm.fields import FluidGrid
from repro.core.solver import SequentialLBMIBSolver
from repro.errors import ConfigurationError, StabilityError


def _setup(shape=(12, 10, 8), perturb=True):
    grid = FluidGrid(shape, tau=0.8)
    structure = geometry.flat_sheet(
        shape, num_fibers=4, nodes_per_fiber=4, stretch_coefficient=0.03
    )
    if perturb:
        structure.sheets[0].positions[1, 1, 0] += 0.6
    return grid, structure


class TestStepping:
    def test_run_advances_time(self):
        grid, structure = _setup()
        solver = SequentialLBMIBSolver(grid, structure)
        solver.run(5)
        assert solver.time_step == 5

    def test_negative_steps_rejected(self):
        grid, structure = _setup()
        solver = SequentialLBMIBSolver(grid, structure)
        with pytest.raises(ValueError):
            solver.run(-1)

    def test_observer_called_each_step(self):
        grid, structure = _setup()
        solver = SequentialLBMIBSolver(grid, structure)
        seen = []
        solver.run(4, observer=lambda step, s: seen.append(step))
        assert seen == [1, 2, 3, 4]

    def test_mass_conserved_periodic(self):
        grid, structure = _setup()
        solver = SequentialLBMIBSolver(grid, structure)
        m0 = grid.total_mass()
        solver.run(10)
        assert grid.total_mass() == pytest.approx(m0, rel=1e-12)

    def test_momentum_conserved_periodic(self):
        """Internal elastic forces add no net momentum."""
        grid, structure = _setup()
        solver = SequentialLBMIBSolver(grid, structure)
        solver.run(10)
        np.testing.assert_allclose(grid.total_momentum(), 0.0, atol=1e-11)

    def test_perturbed_sheet_relaxes(self):
        grid, structure = _setup()
        sheet = structure.sheets[0]
        start = sheet.positions[1, 1, 0]
        SequentialLBMIBSolver(grid, structure).run(30)
        assert sheet.positions[1, 1, 0] < start

    def test_force_field_reset_after_step(self):
        grid, structure = _setup()
        SequentialLBMIBSolver(grid, structure).run(3)
        assert not grid.force.any()

    def test_fluid_only_run(self):
        grid = FluidGrid((8, 8, 8), tau=0.8)
        solver = SequentialLBMIBSolver(grid, None)
        solver.run(3)
        assert solver.time_step == 3


class TestStabilityAndErrors:
    def test_stability_check_raises_on_blowup(self):
        grid, structure = _setup()
        # absurd stiffness at huge displacement -> immediate blow-up
        structure.sheets[0].stretch_coefficient = 1e6
        structure.sheets[0].positions[1, 1, 0] += 2.0
        solver = SequentialLBMIBSolver(grid, structure, check_stability_every=1)
        with pytest.raises(StabilityError):
            solver.run(50)

    def test_duplicate_boundaries_rejected(self):
        grid, structure = _setup()
        with pytest.raises(ConfigurationError):
            SequentialLBMIBSolver(
                grid,
                structure,
                boundaries=[BounceBackWall(0, "low"), BounceBackWall(0, "low")],
            )


class TestExternalForce:
    def test_seeded_at_construction(self):
        grid = FluidGrid((6, 6, 6), tau=0.8)
        SequentialLBMIBSolver(grid, None, external_force=(1e-5, 0, 0))
        np.testing.assert_allclose(grid.force[0], 1e-5)

    def test_reseeded_after_each_step(self):
        grid = FluidGrid((6, 6, 6), tau=0.8)
        solver = SequentialLBMIBSolver(grid, None, external_force=(1e-5, 0, 0))
        solver.run(2)
        np.testing.assert_allclose(grid.force[0], 1e-5)
        np.testing.assert_allclose(grid.force[1:], 0.0)

    def test_body_force_accelerates_periodic_fluid(self):
        grid = FluidGrid((6, 6, 6), tau=0.8)
        solver = SequentialLBMIBSolver(grid, None, external_force=(1e-5, 0, 0))
        solver.run(10)
        # each step adds F per node of momentum; the velocity-shift
        # scheme lags the force by one step (the first collision uses the
        # initial shifted velocity, which carries no force yet)
        expected = 9 * 1e-5 * grid.num_nodes
        assert grid.total_momentum()[0] == pytest.approx(expected, rel=1e-10)


class TestDiagnostics:
    def test_snapshot_fields(self):
        grid, structure = _setup()
        solver = SequentialLBMIBSolver(grid, structure)
        solver.run(2)
        snap = solver.snapshot()
        assert snap["velocity"].shape == (3,) + grid.shape
        assert len(snap["fiber_positions"]) == 1
        # snapshot is a copy
        snap["velocity"][...] = 99
        assert not (grid.velocity == 99).any()

    def test_kernel_timer_sees_all_nine_kernels(self):
        grid, structure = _setup()
        seen = {}
        solver = SequentialLBMIBSolver(
            grid, structure, kernel_timer=lambda k, t: seen.setdefault(k, 0)
        )
        solver.run(1)
        from repro.core.kernels import KERNEL_NAMES

        assert set(seen) == set(KERNEL_NAMES)
