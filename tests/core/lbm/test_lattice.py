"""Tests of the D3Q19 lattice definition (paper Figure 2)."""

import numpy as np
import pytest

from repro.constants import CS2
from repro.core.lbm import lattice


class TestVelocitySet:
    def test_has_19_directions(self):
        assert lattice.E.shape == (19, 3)

    def test_rest_direction_is_zero(self):
        assert (lattice.E[lattice.REST_DIRECTION] == 0).all()

    def test_six_axis_directions(self):
        speeds = np.abs(lattice.E[lattice.AXIS_DIRECTIONS]).sum(axis=1)
        assert (speeds == 1).all()
        assert len(lattice.AXIS_DIRECTIONS) == 6

    def test_twelve_diagonal_directions(self):
        speeds = np.abs(lattice.E[lattice.DIAGONAL_DIRECTIONS]).sum(axis=1)
        assert (speeds == 2).all()
        assert len(lattice.DIAGONAL_DIRECTIONS) == 12

    def test_directions_are_unique(self):
        assert len({tuple(v) for v in lattice.E.tolist()}) == 19

    def test_velocity_set_is_symmetric(self):
        vectors = {tuple(v) for v in lattice.E.tolist()}
        assert {tuple(-np.asarray(v)) for v in vectors} == vectors

    def test_a_particle_can_move_along_18_directions(self):
        moving = [i for i in range(19) if np.any(lattice.E[i])]
        assert len(moving) == 18


class TestWeights:
    def test_weights_sum_to_one(self):
        assert lattice.W.sum() == pytest.approx(1.0, rel=1e-15)

    def test_rest_weight(self):
        assert lattice.W[0] == pytest.approx(1.0 / 3.0)

    def test_axis_weights(self):
        assert np.allclose(lattice.W[lattice.AXIS_DIRECTIONS], 1.0 / 18.0)

    def test_diagonal_weights(self):
        assert np.allclose(lattice.W[lattice.DIAGONAL_DIRECTIONS], 1.0 / 36.0)

    def test_moment_conditions(self):
        assert lattice.lattice_moments_ok()

    def test_second_moment_is_isotropic(self):
        second = np.einsum("i,ia,ib->ab", lattice.W, lattice.E_FLOAT, lattice.E_FLOAT)
        assert np.allclose(second, CS2 * np.eye(3))


class TestOpposite:
    def test_opposite_is_involution(self):
        assert (lattice.OPPOSITE[lattice.OPPOSITE] == np.arange(19)).all()

    def test_opposite_velocities_negate(self):
        assert (lattice.E[lattice.OPPOSITE] == -lattice.E).all()

    def test_rest_is_its_own_opposite(self):
        assert lattice.OPPOSITE[0] == 0

    def test_no_nonrest_self_opposite(self):
        assert (lattice.OPPOSITE[1:] != np.arange(1, 19)).all()


class TestDirectionIndex:
    def test_finds_every_direction(self):
        for i in range(19):
            assert lattice.direction_index(lattice.E[i]) == i

    def test_rejects_non_lattice_vector(self):
        with pytest.raises(ValueError, match="not a D3Q19"):
            lattice.direction_index([2, 0, 0])

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError, match="3-vector"):
            lattice.direction_index([1, 0])
