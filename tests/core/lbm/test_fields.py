"""Tests of the FluidGrid data structure (paper Figure 3)."""

import numpy as np
import pytest

from repro.constants import RHO0
from repro.core.lbm.fields import FluidGrid
from repro.errors import ConfigurationError, StabilityError


class TestConstruction:
    def test_shapes(self, small_grid):
        assert small_grid.df.shape == (19, 8, 6, 4)
        assert small_grid.df_new.shape == (19, 8, 6, 4)
        assert small_grid.velocity.shape == (3, 8, 6, 4)
        assert small_grid.velocity_shifted.shape == (3, 8, 6, 4)
        assert small_grid.density.shape == (8, 6, 4)
        assert small_grid.force.shape == (3, 8, 6, 4)

    def test_starts_at_rest_equilibrium(self, small_grid):
        assert small_grid.total_mass() == pytest.approx(
            RHO0 * small_grid.num_nodes, rel=1e-12
        )
        np.testing.assert_allclose(small_grid.total_momentum(), 0.0, atol=1e-13)
        np.testing.assert_array_equal(small_grid.df, small_grid.df_new)

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            FluidGrid((0, 4, 4))
        with pytest.raises(ConfigurationError):
            FluidGrid((4, 4))

    def test_rejects_bad_tau(self):
        with pytest.raises(ConfigurationError, match="0.5"):
            FluidGrid((4, 4, 4), tau=0.5)

    def test_num_nodes(self, small_grid):
        assert small_grid.num_nodes == 8 * 6 * 4

    def test_nbytes_counts_all_fields(self, small_grid):
        n = small_grid.num_nodes
        expected = 8 * n * (19 + 19 + 1 + 3 + 3 + 3)
        assert small_grid.nbytes == expected


class TestInitializeEquilibrium:
    def test_with_velocity_field(self, rng):
        grid = FluidGrid((4, 4, 4))
        u = 0.02 * rng.standard_normal((3, 4, 4, 4))
        grid.initialize_equilibrium(velocity=u)
        np.testing.assert_allclose(grid.velocity, u)
        np.testing.assert_allclose(grid.velocity_shifted, u)
        mom = grid.total_momentum()
        np.testing.assert_allclose(mom, u.sum(axis=(1, 2, 3)), rtol=1e-10, atol=1e-13)

    def test_with_density_field(self, rng):
        grid = FluidGrid((4, 4, 4))
        rho = 1.0 + 0.1 * rng.standard_normal((4, 4, 4))
        grid.initialize_equilibrium(density=rho)
        assert grid.total_mass() == pytest.approx(rho.sum(), rel=1e-12)


class TestCopyAndCompare:
    def test_copy_is_deep(self, randomized_grid):
        clone = randomized_grid.copy()
        assert clone.state_allclose(randomized_grid)
        clone.df[0, 0, 0, 0] += 1.0
        assert not clone.state_allclose(randomized_grid)
        assert clone.df is not randomized_grid.df

    def test_allclose_detects_each_field(self, randomized_grid):
        for field in ("df", "df_new", "density", "velocity", "velocity_shifted", "force"):
            clone = randomized_grid.copy()
            getattr(clone, field).flat[0] += 1.0
            assert not randomized_grid.state_allclose(clone), field

    def test_allclose_shape_mismatch(self, randomized_grid):
        other = FluidGrid((4, 4, 4))
        assert not randomized_grid.state_allclose(other)


class TestValidateFinite:
    def test_clean_state_passes(self, randomized_grid):
        randomized_grid.validate_finite()

    @pytest.mark.parametrize(
        "field", ["df", "df_new", "density", "velocity", "velocity_shifted", "force"]
    )
    def test_nan_detected_in_every_field(self, randomized_grid, field):
        getattr(randomized_grid, field).flat[3] = np.nan
        with pytest.raises(StabilityError, match=field):
            randomized_grid.validate_finite()

    def test_inf_detected(self, randomized_grid):
        randomized_grid.df.flat[0] = np.inf
        with pytest.raises(StabilityError):
            randomized_grid.validate_finite()
