"""Tests of the derived flow quantities."""

import numpy as np
import pytest

from repro.constants import CS2
from repro.core.lbm import analysis


def _shear_field(n=8):
    """u = (c*y, 0, 0): constant shear du_x/dy = c."""
    c = 0.01
    u = np.zeros((3, n, n, n))
    u[0] = c * np.arange(n)[None, :, None]
    return u, c


class TestPressure:
    def test_equation_of_state(self):
        rho = np.full((2, 2, 2), 1.5)
        np.testing.assert_allclose(analysis.pressure(rho), CS2 * 1.5)


class TestGradientsAndVorticity:
    def test_gradient_of_linear_field_interior(self):
        u, c = _shear_field()
        g = analysis.velocity_gradient(u)
        # interior rows (periodic differences wrap at the edges)
        np.testing.assert_allclose(g[0, 1][:, 1:-1, :], c, rtol=1e-12)
        np.testing.assert_allclose(g[0, 0], 0.0, atol=1e-15)
        np.testing.assert_allclose(g[1], 0.0, atol=1e-15)

    def test_vorticity_of_shear_flow(self):
        u, c = _shear_field()
        w = analysis.vorticity(u)
        # omega_z = du_y/dx - du_x/dy = -c in the interior
        np.testing.assert_allclose(w[2][:, 1:-1, :], -c, rtol=1e-12)
        np.testing.assert_allclose(w[0], 0.0, atol=1e-15)

    def test_vorticity_of_rigid_rotation(self):
        """u = Omega x r has curl = 2 Omega."""
        n = 10
        omega = 0.001
        x = np.arange(n) - (n - 1) / 2
        X, Y, _ = np.meshgrid(x, x, x, indexing="ij")
        u = np.zeros((3, n, n, n))
        u[0] = -omega * Y
        u[1] = omega * X
        w = analysis.vorticity(u)
        interior = (slice(1, -1),) * 3
        np.testing.assert_allclose(w[2][interior], 2 * omega, rtol=1e-10)

    def test_strain_rate_is_symmetric(self, rng):
        u = 0.01 * rng.standard_normal((3, 6, 6, 6))
        s = analysis.strain_rate(u)
        np.testing.assert_allclose(s, np.swapaxes(s, 0, 1))

    def test_shear_stress_magnitude(self):
        u, c = _shear_field()
        rho = np.ones((8, 8, 8))
        sigma = analysis.shear_stress(u, rho, nu=0.1)
        # sigma_xy = 2 rho nu * c/2 = rho nu c in the interior
        np.testing.assert_allclose(
            sigma[0, 1][:, 1:-1, :], 0.1 * c, rtol=1e-12
        )


class TestIntegrals:
    def test_kinetic_energy_uniform_flow(self):
        u = np.zeros((3, 4, 4, 4))
        u[0] = 0.1
        ke = analysis.kinetic_energy(u)
        assert ke == pytest.approx(0.5 * 0.01 * 64)

    def test_kinetic_energy_with_density(self):
        u = np.zeros((3, 2, 2, 2))
        u[0] = 1.0
        rho = np.full((2, 2, 2), 2.0)
        assert analysis.kinetic_energy(u, rho) == pytest.approx(8.0)

    def test_enstrophy_zero_for_irrotational(self):
        u = np.zeros((3, 4, 4, 4))
        u[0] = 0.05
        assert analysis.enstrophy(u) == pytest.approx(0.0, abs=1e-15)

    def test_max_velocity_magnitude(self):
        u = np.zeros((3, 3, 3, 3))
        u[:, 1, 1, 1] = [0.3, 0.4, 0.0]
        assert analysis.max_velocity_magnitude(u) == pytest.approx(0.5)


class TestNoneqStress:
    @pytest.mark.slow
    def test_couette_shear_matches_analytic(self):
        """sigma_xy from distribution moments equals rho*nu*du/dy."""
        from repro.constants import viscosity_from_tau
        from repro.core.lbm.boundaries import BounceBackWall
        from repro.core.lbm.fields import FluidGrid
        from repro.core.solver import SequentialLBMIBSolver

        h, tau, uw = 10, 0.8, 0.02
        nu = viscosity_from_tau(tau)
        grid = FluidGrid((4, h, 4), tau=tau)
        SequentialLBMIBSolver(
            grid,
            None,
            boundaries=[
                BounceBackWall(1, "low"),
                BounceBackWall(1, "high", wall_velocity=(uw, 0, 0)),
            ],
        ).run(3000)
        sigma = analysis.noneq_stress(grid.df, grid.density, grid.velocity, tau)
        assert sigma[0, 1, 0, h // 2, 0] == pytest.approx(nu * uw / h, rel=1e-3)

    def test_zero_at_equilibrium(self, randomized_grid):
        from repro.core.lbm import macroscopic

        rho = macroscopic.compute_density(randomized_grid.df)
        vel, _ = macroscopic.compute_velocity(randomized_grid.df)
        sigma = analysis.noneq_stress(randomized_grid.df, rho, vel, 0.8)
        # the fixture initializes both buffers at equilibrium
        np.testing.assert_allclose(sigma, 0.0, atol=1e-12)

    def test_symmetric_tensor(self, randomized_grid, rng):
        from repro.core.lbm import macroscopic

        df = randomized_grid.df + 1e-3 * rng.standard_normal(randomized_grid.df.shape)
        rho = macroscopic.compute_density(df)
        vel, _ = macroscopic.compute_velocity(df)
        sigma = analysis.noneq_stress(df, rho, vel, 0.8)
        np.testing.assert_allclose(sigma, np.swapaxes(sigma, 0, 1))
