"""Tests of the streaming kernel (paper kernel 6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import reference
from repro.core.lbm import streaming
from repro.core.lbm.lattice import E, Q


class TestStream:
    def test_matches_loop_reference(self, randomized_grid):
        out = np.empty_like(randomized_grid.df)
        streaming.stream(randomized_grid.df, out)
        expected = reference.stream_loop(randomized_grid.df)
        np.testing.assert_allclose(out, expected, rtol=0, atol=0)

    def test_conserves_every_population(self, randomized_grid):
        out = np.empty_like(randomized_grid.df)
        streaming.stream(randomized_grid.df, out)
        for i in range(Q):
            assert out[i].sum() == pytest.approx(
                randomized_grid.df[i].sum(), rel=1e-13
            )

    def test_is_a_permutation(self, randomized_grid):
        out = np.empty_like(randomized_grid.df)
        streaming.stream(randomized_grid.df, out)
        for i in range(Q):
            np.testing.assert_allclose(
                np.sort(out[i].ravel()), np.sort(randomized_grid.df[i].ravel())
            )

    def test_rest_population_stays(self, randomized_grid):
        out = np.empty_like(randomized_grid.df)
        streaming.stream(randomized_grid.df, out)
        np.testing.assert_allclose(out[0], randomized_grid.df[0])

    def test_single_direction_shift(self):
        field = np.zeros((4, 4, 4))
        field[1, 2, 3] = 7.0
        out = np.empty_like(field)
        i = int(np.nonzero((E == [1, 0, 0]).all(axis=1))[0][0])
        streaming.stream_direction(field, i, out)
        assert out[2, 2, 3] == 7.0
        assert out.sum() == 7.0

    def test_periodic_wraparound(self):
        field = np.zeros((3, 3, 3))
        field[2, 0, 0] = 1.0
        out = np.empty_like(field)
        i = int(np.nonzero((E == [1, 0, 0]).all(axis=1))[0][0])
        streaming.stream_direction(field, i, out)
        assert out[0, 0, 0] == 1.0

    def test_mismatched_shapes_rejected(self, randomized_grid):
        with pytest.raises(ValueError, match="shape"):
            streaming.stream(randomized_grid.df, np.empty((19, 2, 2, 2)))

    def test_opposite_streams_invert(self, randomized_grid):
        """Streaming by e then by -e returns every field to its origin."""
        from repro.core.lbm.lattice import OPPOSITE

        df = randomized_grid.df
        once = np.empty_like(df)
        twice = np.empty_like(df)
        streaming.stream(df, once)
        for i in range(Q):
            streaming.stream_direction(once[i], int(OPPOSITE[i]), twice[i])
        np.testing.assert_allclose(twice, df)


class TestShiftSlices:
    @given(
        extent=st.integers(2, 50),
        shift=st.integers(-5, 5),
    )
    @settings(max_examples=60, deadline=None)
    def test_shift_property(self, extent, shift):
        if abs(shift) >= extent:
            with pytest.raises(ValueError):
                streaming.shift_slices(extent, shift)
            return
        src, dst = streaming.shift_slices(extent, shift)
        a = np.arange(extent)
        out = np.full(extent, -1)
        out[dst] = a[src]
        for i in range(extent):
            j = i + shift
            if 0 <= j < extent:
                assert out[j] == a[i]

    def test_zero_shift_is_identity(self):
        src, dst = streaming.shift_slices(5, 0)
        assert src == dst == slice(0, 5)
