"""Tests of the macroscopic moment computations."""

import numpy as np
import pytest

from repro.core import reference
from repro.core.lbm import equilibrium, macroscopic


class TestDensity:
    def test_density_is_zeroth_moment(self, randomized_grid):
        rho = macroscopic.compute_density(randomized_grid.df)
        np.testing.assert_allclose(rho, randomized_grid.df.sum(axis=0))

    def test_out_parameter(self, randomized_grid):
        out = np.empty(randomized_grid.shape)
        result = macroscopic.compute_density(randomized_grid.df, out=out)
        assert result is out


class TestMomentum:
    def test_momentum_matches_loop_reference(self, randomized_grid):
        mom = macroscopic.compute_momentum_density(randomized_grid.df)
        density, velocity = reference.macroscopic_loop(randomized_grid.df)
        np.testing.assert_allclose(
            mom, velocity * density[None], rtol=1e-12, atol=1e-15
        )

    def test_equilibrium_roundtrip(self, rng):
        rho = 1.0 + 0.05 * rng.standard_normal((3, 3, 3))
        u = 0.05 * rng.standard_normal((3, 3, 3, 3))
        df = equilibrium.equilibrium(rho, u)
        mom = macroscopic.compute_momentum_density(df)
        np.testing.assert_allclose(mom, rho[None] * u, rtol=1e-10, atol=1e-14)


class TestVelocity:
    def test_velocity_without_force(self, randomized_grid):
        vel, rho = macroscopic.compute_velocity(randomized_grid.df)
        ref_rho, ref_vel = reference.macroscopic_loop(randomized_grid.df)
        np.testing.assert_allclose(rho, ref_rho, rtol=1e-13)
        np.testing.assert_allclose(vel, ref_vel, rtol=1e-12, atol=1e-15)

    def test_velocity_with_half_force_correction(self, randomized_grid):
        force = randomized_grid.force
        vel, _ = macroscopic.compute_velocity(randomized_grid.df, force=force)
        _, ref_vel = reference.macroscopic_loop(randomized_grid.df, force=force)
        np.testing.assert_allclose(vel, ref_vel, rtol=1e-12, atol=1e-15)

    def test_force_shifts_velocity(self, randomized_grid):
        v0, _ = macroscopic.compute_velocity(randomized_grid.df)
        force = np.zeros((3,) + randomized_grid.shape)
        force[0] = 0.01
        v1, rho = macroscopic.compute_velocity(randomized_grid.df, force=force)
        np.testing.assert_allclose(v1[0] - v0[0], 0.005 / rho, rtol=1e-12)
        np.testing.assert_allclose(v1[1:], v0[1:])

    def test_out_parameters(self, randomized_grid):
        out_v = np.empty((3,) + randomized_grid.shape)
        out_d = np.empty(randomized_grid.shape)
        v, d = macroscopic.compute_velocity(
            randomized_grid.df, out_velocity=out_v, out_density=out_d
        )
        assert v is out_v and d is out_d

    def test_precomputed_density_reused(self, randomized_grid):
        rho = macroscopic.compute_density(randomized_grid.df)
        v1, d1 = macroscopic.compute_velocity(randomized_grid.df, density=rho)
        v2, _ = macroscopic.compute_velocity(randomized_grid.df)
        np.testing.assert_allclose(v1, v2)
