"""Tests of the BGK collision kernel (paper kernel 5)."""

import numpy as np
import pytest

from repro.core import reference
from repro.core.lbm import collision, equilibrium, macroscopic
from repro.core.lbm.lattice import E_FLOAT


class TestConservation:
    def test_mass_conserved_without_force(self, randomized_grid):
        df = randomized_grid.df.copy()
        rho = macroscopic.compute_density(df)
        vel, _ = macroscopic.compute_velocity(df)
        before = df.sum()
        collision.bgk_collide(df, rho, vel, tau=0.8)
        assert df.sum() == pytest.approx(before, rel=1e-13)

    def test_momentum_conserved_without_force(self, randomized_grid):
        df = randomized_grid.df.copy()
        rho = macroscopic.compute_density(df)
        vel, _ = macroscopic.compute_velocity(df)
        before = np.einsum("ia,ix->a", E_FLOAT, df.reshape(19, -1))
        collision.bgk_collide(df, rho, vel, tau=0.8)
        after = np.einsum("ia,ix->a", E_FLOAT, df.reshape(19, -1))
        np.testing.assert_allclose(after, before, rtol=1e-10, atol=1e-12)

    def test_shifted_velocity_injects_momentum(self, rng):
        """Colliding toward u* = u + tau*F/rho adds exactly F of momentum.

        This is the velocity-shift forcing identity the solvers rely on.
        """
        tau = 0.8
        shape = (3, 3, 3)
        rho = np.ones(shape)
        u = 0.02 * rng.standard_normal((3,) + shape)
        df = equilibrium.equilibrium(rho, u)
        force = 1e-3 * rng.standard_normal((3,) + shape)
        u_star = u + tau * force / rho[None]
        before = np.einsum("ia,ixyz->a", E_FLOAT, df)
        collision.bgk_collide(df, rho, u_star, tau)
        after = np.einsum("ia,ixyz->a", E_FLOAT, df)
        np.testing.assert_allclose(
            after - before, force.sum(axis=(1, 2, 3)), rtol=1e-10, atol=1e-14
        )


class TestRelaxation:
    def test_equilibrium_is_fixed_point(self, rng):
        rho = 1.0 + 0.05 * rng.standard_normal((2, 2, 2))
        u = 0.03 * rng.standard_normal((3, 2, 2, 2))
        df = equilibrium.equilibrium(rho, u)
        out = collision.bgk_collide(df.copy(), rho, u, tau=0.7)
        np.testing.assert_allclose(out, df, rtol=1e-12, atol=1e-15)

    def test_tau_one_reaches_equilibrium_in_one_step(self, randomized_grid):
        df = randomized_grid.df.copy()
        rho = macroscopic.compute_density(df)
        vel, _ = macroscopic.compute_velocity(df)
        collision.bgk_collide(df, rho, vel, tau=1.0)
        np.testing.assert_allclose(
            df, equilibrium.equilibrium(rho, vel), rtol=1e-12, atol=1e-15
        )

    def test_matches_loop_reference(self, randomized_grid):
        df = randomized_grid.df
        u_star = randomized_grid.velocity_shifted
        u_star[...] = 0.01  # some arbitrary shifted field
        expected = reference.collide_loop(df, 0.8, u_star)
        out = collision.bgk_collide(df.copy(), df.sum(axis=0), u_star, tau=0.8)
        np.testing.assert_allclose(out, expected, rtol=1e-11, atol=1e-14)

    def test_out_of_place(self, randomized_grid):
        df = randomized_grid.df
        rho = macroscopic.compute_density(df)
        vel, _ = macroscopic.compute_velocity(df)
        out = np.empty_like(df)
        result = collision.bgk_collide(df, rho, vel, tau=0.9, out=out)
        assert result is out
        in_place = collision.bgk_collide(df.copy(), rho, vel, tau=0.9)
        np.testing.assert_allclose(out, in_place, rtol=1e-13)

    def test_feq_scratch_reuse_is_safe(self, randomized_grid):
        df = randomized_grid.df
        rho = macroscopic.compute_density(df)
        vel, _ = macroscopic.compute_velocity(df)
        scratch = np.empty_like(df)
        a = collision.bgk_collide(df.copy(), rho, vel, 0.8, feq_scratch=scratch)
        b = collision.bgk_collide(df.copy(), rho, vel, 0.8)
        np.testing.assert_allclose(a, b, rtol=1e-13)


class TestGuoSource:
    """The Guo forcing term is kept as an alternative coupling scheme."""

    def test_first_moment_of_source(self, rng):
        """sum_i e_i S_i = (1 - 1/2tau) F."""
        tau = 0.9
        u = 0.02 * rng.standard_normal((3, 2, 2, 2))
        force = 1e-3 * rng.standard_normal((3, 2, 2, 2))
        s = collision.guo_source_term(u, force, tau)
        moment = np.einsum("ia,ixyz->axyz", E_FLOAT, s)
        np.testing.assert_allclose(
            moment, (1.0 - 0.5 / tau) * force, rtol=1e-10, atol=1e-15
        )

    def test_zeroth_moment_of_source(self, rng):
        """sum_i S_i = -3 (1 - 1/2tau) u.F ... vanishes at u = 0."""
        s = collision.guo_source_term(
            np.zeros((3, 2, 2, 2)), np.ones((3, 2, 2, 2)), 0.8
        )
        np.testing.assert_allclose(s.sum(axis=0), 0.0, atol=1e-13)
