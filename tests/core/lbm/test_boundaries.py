"""Tests of the face boundary conditions."""

import numpy as np
import pytest

from repro.core.lbm import boundaries, streaming
from repro.core.lbm.fields import FluidGrid
from repro.core.lbm.lattice import E, OPPOSITE
from repro.errors import ConfigurationError


def _streamed(grid):
    streaming.stream(grid.df, grid.df_new)
    return grid


class TestFaceIndex:
    def test_low_face(self):
        idx = boundaries.face_index(1, "low", (4, 5, 6))
        assert idx == (slice(None), 0, slice(None))

    def test_high_face(self):
        idx = boundaries.face_index(2, "high", (4, 5, 6))
        assert idx == (slice(None), slice(None), 5)

    def test_bad_axis(self):
        with pytest.raises(ConfigurationError):
            boundaries.face_index(3, "low", (4, 5, 6))

    def test_bad_side(self):
        with pytest.raises(ConfigurationError):
            boundaries.face_index(0, "top", (4, 5, 6))


class TestIncomingDirections:
    @pytest.mark.parametrize("axis", [0, 1, 2])
    def test_low_side_points_inward(self, axis):
        b = boundaries.BounceBackWall(axis, "low")
        assert (E[b.incoming_directions(), axis] > 0).all()
        assert len(b.incoming_directions()) == 5

    @pytest.mark.parametrize("axis", [0, 1, 2])
    def test_high_side_points_inward(self, axis):
        b = boundaries.BounceBackWall(axis, "high")
        assert (E[b.incoming_directions(), axis] < 0).all()


class TestPeriodic:
    def test_apply_is_noop(self, randomized_grid):
        _streamed(randomized_grid)
        before = randomized_grid.df_new.copy()
        boundaries.PeriodicBoundary(0, "low").apply(
            randomized_grid.df, randomized_grid.df_new
        )
        np.testing.assert_array_equal(randomized_grid.df_new, before)


class TestBounceBack:
    def test_reflects_opposite_population(self, randomized_grid):
        _streamed(randomized_grid)
        wall = boundaries.BounceBackWall(0, "low")
        wall.apply(randomized_grid.df, randomized_grid.df_new)
        for i in wall.incoming_directions():
            np.testing.assert_allclose(
                randomized_grid.df_new[i, 0],
                randomized_grid.df[OPPOSITE[i], 0],
            )

    def test_static_wall_produces_no_slip_velocity(self):
        """A uniform resting fluid stays at rest beside a fixed wall."""
        grid = FluidGrid((4, 6, 4), tau=0.8)
        from repro.core import kernels

        walls = [
            boundaries.BounceBackWall(1, "low"),
            boundaries.BounceBackWall(1, "high"),
        ]
        for _ in range(3):
            kernels.compute_fluid_collision(grid)
            kernels.stream_fluid_velocity_distribution(grid)
            for w in walls:
                w.apply(grid.df, grid.df_new)
            kernels.update_fluid_velocity(grid)
            kernels.copy_fluid_velocity_distribution(grid)
        assert np.abs(grid.velocity).max() < 1e-14

    def test_moving_wall_drags_fluid(self):
        """A tangentially moving wall imparts momentum (Couette start-up)."""
        grid = FluidGrid((4, 8, 4), tau=0.8)
        from repro.core import kernels

        walls = [
            boundaries.BounceBackWall(1, "low"),
            boundaries.BounceBackWall(1, "high", wall_velocity=(0.05, 0.0, 0.0)),
        ]
        for _ in range(10):
            kernels.compute_fluid_collision(grid)
            kernels.stream_fluid_velocity_distribution(grid)
            for w in walls:
                w.apply(grid.df, grid.df_new)
            kernels.update_fluid_velocity(grid)
            kernels.copy_fluid_velocity_distribution(grid)
        ux = grid.velocity[0, 0, :, 0]
        assert ux[-1] > 1e-4, "fluid near the moving wall must be dragged"
        assert ux[-1] > ux[0], "velocity decays away from the moving wall"

    def test_mass_conserved_by_fixed_walls(self, randomized_grid):
        from repro.core import kernels

        walls = [
            boundaries.BounceBackWall(0, "low"),
            boundaries.BounceBackWall(0, "high"),
        ]
        m0 = randomized_grid.total_mass()
        for _ in range(5):
            kernels.compute_fluid_collision(randomized_grid)
            kernels.stream_fluid_velocity_distribution(randomized_grid)
            for w in walls:
                w.apply(randomized_grid.df, randomized_grid.df_new)
            kernels.update_fluid_velocity(randomized_grid)
            kernels.copy_fluid_velocity_distribution(randomized_grid)
        assert randomized_grid.total_mass() == pytest.approx(m0, rel=1e-12)


class TestOutflow:
    def test_copies_interior_layer(self, randomized_grid):
        _streamed(randomized_grid)
        out = boundaries.OutflowBoundary(0, "high")
        out.apply(randomized_grid.df, randomized_grid.df_new)
        nx = randomized_grid.shape[0]
        for i in out.incoming_directions():
            np.testing.assert_allclose(
                randomized_grid.df_new[i, nx - 1],
                randomized_grid.df_new[i, nx - 2],
            )

    def test_needs_two_layers(self):
        grid = FluidGrid((1, 4, 4), tau=0.8)
        out = boundaries.OutflowBoundary(0, "low")
        with pytest.raises(ConfigurationError, match="two layers"):
            out.apply(grid.df, grid.df_new)


class TestValidation:
    def test_duplicate_faces_rejected(self):
        with pytest.raises(ConfigurationError, match="multiple"):
            boundaries.validate_boundaries(
                [
                    boundaries.BounceBackWall(0, "low"),
                    boundaries.OutflowBoundary(0, "low"),
                ]
            )

    def test_distinct_faces_accepted(self):
        boundaries.validate_boundaries(
            [
                boundaries.BounceBackWall(0, "low"),
                boundaries.BounceBackWall(0, "high"),
                boundaries.BounceBackWall(1, "low"),
            ]
        )

    def test_bad_constructor_axis(self):
        with pytest.raises(ConfigurationError):
            boundaries.BounceBackWall(5, "low")

    def test_bad_constructor_side(self):
        with pytest.raises(ConfigurationError):
            boundaries.BounceBackWall(0, "middle")
