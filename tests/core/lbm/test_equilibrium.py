"""Tests of the discrete equilibrium distribution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import reference
from repro.core.lbm import equilibrium
from repro.core.lbm.lattice import E_FLOAT


class TestEquilibriumValues:
    def test_matches_scalar_reference_on_random_states(self, rng):
        rho = 1.0 + 0.1 * rng.standard_normal((4, 3, 2))
        u = 0.05 * rng.standard_normal((3, 4, 3, 2))
        feq = equilibrium.equilibrium(rho, u)
        for idx in np.ndindex(4, 3, 2):
            expected = reference.equilibrium_node(
                rho[idx], u[(slice(None),) + idx]
            )
            np.testing.assert_allclose(feq[(slice(None),) + idx], expected, rtol=1e-13)

    def test_zero_velocity_gives_weighted_density(self):
        from repro.core.lbm.lattice import W

        feq = equilibrium.equilibrium(2.0, np.zeros((3, 2, 2, 2)))
        for i in range(19):
            np.testing.assert_allclose(feq[i], 2.0 * W[i])

    def test_scalar_density_broadcasts(self):
        u = np.zeros((3, 2, 2))
        feq = equilibrium.equilibrium(1.5, u)
        assert feq.shape == (19, 2, 2)

    def test_out_parameter_used_in_place(self):
        u = np.zeros((3, 2, 2))
        out = np.empty((19, 2, 2))
        result = equilibrium.equilibrium(1.0, u, out=out)
        assert result is out

    def test_out_wrong_shape_rejected(self):
        with pytest.raises(ValueError, match="out has shape"):
            equilibrium.equilibrium(1.0, np.zeros((3, 2)), out=np.empty((19, 3)))

    def test_velocity_without_component_axis_rejected(self):
        with pytest.raises(ValueError, match="component axis"):
            equilibrium.equilibrium(1.0, np.zeros((2, 3, 4)))


class TestEquilibriumMoments:
    """The equilibrium must carry exactly the prescribed moments."""

    @given(
        rho=st.floats(0.5, 2.0),
        ux=st.floats(-0.1, 0.1),
        uy=st.floats(-0.1, 0.1),
        uz=st.floats(-0.1, 0.1),
    )
    @settings(max_examples=50, deadline=None)
    def test_mass_and_momentum_moments(self, rho, ux, uy, uz):
        u = np.array([ux, uy, uz])
        feq = equilibrium.equilibrium_single(rho, u)
        assert feq.sum() == pytest.approx(rho, rel=1e-12)
        momentum = E_FLOAT.T @ feq
        np.testing.assert_allclose(momentum, rho * u, rtol=1e-10, atol=1e-14)

    def test_positive_for_moderate_velocities(self):
        feq = equilibrium.equilibrium_single(1.0, [0.1, 0.05, -0.08])
        assert (feq > 0).all()

    def test_single_wrapper_shape(self):
        assert equilibrium.equilibrium_single(1.0, [0, 0, 0]).shape == (19,)
