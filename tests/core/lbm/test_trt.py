"""Tests of the TRT (two-relaxation-time) collision operator."""

import numpy as np
import pytest

from repro.constants import viscosity_from_tau
from repro.core.lbm import collision, equilibrium, macroscopic
from repro.core.lbm.fields import FluidGrid
from repro.core.lbm.lattice import E_FLOAT
from repro.core.solver import SequentialLBMIBSolver
from repro.errors import ConfigurationError


class TestTrtProperties:
    def test_mass_conserved(self, randomized_grid):
        df = randomized_grid.df.copy()
        rho = macroscopic.compute_density(df)
        vel, _ = macroscopic.compute_velocity(df)
        before = df.sum()
        collision.trt_collide(df, rho, vel, tau=0.8)
        assert df.sum() == pytest.approx(before, rel=1e-13)

    def test_momentum_conserved(self, randomized_grid):
        df = randomized_grid.df.copy()
        rho = macroscopic.compute_density(df)
        vel, _ = macroscopic.compute_velocity(df)
        before = np.einsum("ia,ix->a", E_FLOAT, df.reshape(19, -1))
        collision.trt_collide(df, rho, vel, tau=0.8)
        after = np.einsum("ia,ix->a", E_FLOAT, df.reshape(19, -1))
        np.testing.assert_allclose(after, before, rtol=1e-10, atol=1e-12)

    def test_equilibrium_is_fixed_point(self, rng):
        rho = 1.0 + 0.05 * rng.standard_normal((2, 2, 2))
        u = 0.03 * rng.standard_normal((3, 2, 2, 2))
        df = equilibrium.equilibrium(rho, u)
        out = collision.trt_collide(df.copy(), rho, u, tau=0.7)
        np.testing.assert_allclose(out, df, rtol=1e-12, atol=1e-15)

    def test_reduces_to_bgk_when_tau_minus_equals_tau(self, randomized_grid, rng):
        """With Lambda = (tau - 1/2)^2 both relaxation rates coincide."""
        tau = 0.8
        df = randomized_grid.df + 1e-3 * rng.standard_normal(
            randomized_grid.df.shape
        )
        rho = macroscopic.compute_density(df)
        vel, _ = macroscopic.compute_velocity(df)
        trt = collision.trt_collide(
            df.copy(), rho, vel, tau, magic_lambda=(tau - 0.5) ** 2
        )
        bgk = collision.bgk_collide(df.copy(), rho, vel, tau)
        np.testing.assert_allclose(trt, bgk, rtol=1e-12, atol=1e-15)

    def test_differs_from_bgk_off_equilibrium(self, randomized_grid, rng):
        df = randomized_grid.df + 1e-3 * rng.standard_normal(
            randomized_grid.df.shape
        )
        rho = macroscopic.compute_density(df)
        vel, _ = macroscopic.compute_velocity(df)
        trt = collision.trt_collide(df.copy(), rho, vel, 0.8)
        bgk = collision.bgk_collide(df.copy(), rho, vel, 0.8)
        assert np.abs(trt - bgk).max() > 1e-10

    def test_rejects_bad_magic(self, randomized_grid):
        df = randomized_grid.df
        with pytest.raises(ValueError, match="magic"):
            collision.trt_collide(df, df.sum(axis=0), df[:3], 0.8, magic_lambda=0.0)

    def test_out_of_place(self, randomized_grid):
        df = randomized_grid.df
        rho = macroscopic.compute_density(df)
        vel, _ = macroscopic.compute_velocity(df)
        out = np.empty_like(df)
        result = collision.trt_collide(df, rho, vel, 0.8, out=out)
        assert result is out
        in_place = collision.trt_collide(df.copy(), rho, vel, 0.8)
        np.testing.assert_allclose(out, in_place)


class TestDispatch:
    def test_collide_routes_operators(self, randomized_grid, rng):
        df = randomized_grid.df + 1e-3 * rng.standard_normal(
            randomized_grid.df.shape
        )
        rho = macroscopic.compute_density(df)
        vel, _ = macroscopic.compute_velocity(df)
        bgk = collision.collide(df.copy(), rho, vel, 0.8, operator="bgk")
        trt = collision.collide(df.copy(), rho, vel, 0.8, operator="trt")
        np.testing.assert_allclose(bgk, collision.bgk_collide(df.copy(), rho, vel, 0.8))
        assert np.abs(bgk - trt).max() > 1e-10

    def test_unknown_operator_rejected(self, randomized_grid):
        df = randomized_grid.df
        with pytest.raises(ValueError, match="unknown collision"):
            collision.collide(df, df.sum(axis=0), df[:3], 0.8, operator="mrt")

    def test_fluid_grid_validates_operator(self):
        with pytest.raises(ConfigurationError):
            FluidGrid((4, 4, 4), collision_operator="mrt")

    def test_grid_copy_preserves_operator(self):
        grid = FluidGrid((4, 4, 4), collision_operator="trt")
        assert grid.copy().collision_operator == "trt"


class TestTrtPhysics:
    def test_taylor_green_decay_same_viscosity(self):
        """TRT's omega+ carries the viscosity: decay matches BGK's."""
        n, tau = 24, 0.8
        nu = viscosity_from_tau(tau)
        grid = FluidGrid((n, n, 2), tau=tau, collision_operator="trt")
        k = 2 * np.pi / n
        x = np.arange(n)
        X, Y = np.meshgrid(x, x, indexing="ij")
        u = np.zeros((3, n, n, 2))
        u[0] = (0.01 * np.cos(k * X) * np.sin(k * Y))[:, :, None]
        u[1] = (-0.01 * np.sin(k * X) * np.cos(k * Y))[:, :, None]
        grid.initialize_equilibrium(velocity=u)
        SequentialLBMIBSolver(grid, None).run(120)
        expected = np.exp(-nu * 2 * k**2 * 120)
        assert np.abs(grid.velocity[0]).max() / 0.01 == pytest.approx(
            expected, rel=0.02
        )

    @pytest.mark.slow
    def test_trt_poiseuille_more_accurate_at_walls(self):
        """The magic number 3/16 removes the bounce-back slip error."""
        from repro.core.lbm.boundaries import BounceBackWall

        h, tau, f = 8, 0.9, 1e-5
        nu = viscosity_from_tau(tau)
        y = np.arange(h)
        analytic = f / (2 * nu) * (y + 0.5) * (h - 0.5 - y)

        def run(op):
            grid = FluidGrid((4, h, 4), tau=tau, collision_operator=op)
            SequentialLBMIBSolver(
                grid,
                None,
                boundaries=[BounceBackWall(1, "low"), BounceBackWall(1, "high")],
                external_force=(f, 0, 0),
            ).run(2500)
            return grid.velocity[0, 0, :, 0]

        err_trt = np.abs(run("trt") - analytic).max()
        err_bgk = np.abs(run("bgk") - analytic).max()
        # Lambda = 3/16 makes the profile machine-exact
        assert err_trt < 1e-10
        assert err_trt < err_bgk

    def test_all_solvers_agree_with_trt(self):
        from repro.core.ib import geometry
        from repro.parallel import CubeGrid, CubeLBMIBSolver, OpenMPLBMIBSolver

        shape = (12, 8, 8)

        def make():
            grid = FluidGrid(shape, tau=0.8, collision_operator="trt")
            structure = geometry.flat_sheet(
                shape, num_fibers=4, nodes_per_fiber=4, stretch_coefficient=0.04
            )
            structure.sheets[0].positions[1, 1, 0] += 0.5
            return grid, structure

        g0, s0 = make()
        SequentialLBMIBSolver(g0, s0).run(5)
        g1, s1 = make()
        with OpenMPLBMIBSolver(g1, s1, num_threads=3) as solver:
            solver.run(5)
        assert g0.state_allclose(g1, rtol=1e-10, atol=1e-12)
        g2, s2 = make()
        cg = CubeGrid.from_fluid_grid(g2, cube_size=4)
        assert cg.collision_operator == "trt"
        CubeLBMIBSolver(cg, s2, num_threads=2).run(5)
        assert g0.state_allclose(cg.to_fluid_grid(), rtol=1e-10, atol=1e-12)
