"""Tests of the nine paper kernels as a set (Algorithm 1 pieces)."""

import numpy as np
import pytest

from repro.core import kernels, reference
from repro.core.ib.delta import CosineDelta
from repro.core.ib.fiber import FiberSheet, ImmersedStructure
from repro.core.lbm.fields import FluidGrid


@pytest.fixture
def state(rng):
    grid = FluidGrid((8, 8, 8), tau=0.8)
    density = 1.0 + 0.02 * rng.standard_normal(grid.shape)
    velocity = 0.02 * rng.standard_normal((3,) + grid.shape)
    grid.initialize_equilibrium(density=density, velocity=velocity)
    pos = rng.uniform(2.0, 5.0, size=(4, 4, 3))
    sheet = FiberSheet(pos, stretch_coefficient=0.02, bend_coefficient=0.002)
    return grid, ImmersedStructure([sheet])


class TestKernelNames:
    def test_nine_kernels_in_algorithm_order(self):
        assert len(kernels.KERNEL_NAMES) == 9
        assert kernels.KERNEL_NAMES[0] == "compute_bending_force_in_fibers"
        assert kernels.KERNEL_NAMES[4] == "compute_fluid_collision"
        assert kernels.KERNEL_NAMES[8] == "copy_fluid_velocity_distribution"

    def test_every_kernel_is_exported(self):
        for name in kernels.KERNEL_NAMES:
            assert callable(getattr(kernels, name))


class TestFiberKernels:
    def test_kernels_1_to_3_fill_buffers(self, state):
        grid, structure = state
        kernels.compute_bending_force_in_fibers(structure)
        kernels.compute_stretching_force_in_fibers(structure)
        kernels.compute_elastic_force_in_fibers(structure)
        sheet = structure.sheets[0]
        assert np.abs(sheet.bending_force).max() > 0
        assert np.abs(sheet.stretching_force).max() > 0
        np.testing.assert_allclose(
            sheet.elastic_force, sheet.bending_force + sheet.stretching_force
        )

    def test_kernel_4_spreads_into_grid(self, state):
        grid, structure = state
        kernels.compute_bending_force_in_fibers(structure)
        kernels.compute_stretching_force_in_fibers(structure)
        kernels.compute_elastic_force_in_fibers(structure)
        kernels.spread_force_from_fibers_to_fluid(structure, grid)
        assert np.abs(grid.force).max() > 0
        expected = reference.spread_loop(
            structure.sheets[0], CosineDelta(), grid.shape
        )
        np.testing.assert_allclose(grid.force, expected, rtol=1e-10, atol=1e-13)

    def test_kernel_4_reset_flag(self, state):
        grid, structure = state
        kernels.compute_bending_force_in_fibers(structure)
        kernels.compute_stretching_force_in_fibers(structure)
        kernels.compute_elastic_force_in_fibers(structure)
        grid.force[...] = 1.0
        kernels.spread_force_from_fibers_to_fluid(structure, grid, reset=True)
        once = grid.force.copy()
        kernels.spread_force_from_fibers_to_fluid(structure, grid, reset=False)
        np.testing.assert_allclose(grid.force, 2 * once, rtol=1e-12)


class TestFluidKernels:
    def test_kernel_5_matches_reference(self, state):
        grid, _ = state
        grid.velocity_shifted[...] = 0.01
        expected = reference.collide_loop(grid.df, grid.tau, grid.velocity_shifted)
        kernels.compute_fluid_collision(grid)
        np.testing.assert_allclose(grid.df, expected, rtol=1e-11, atol=1e-14)

    def test_kernel_6_matches_reference(self, state):
        grid, _ = state
        expected = reference.stream_loop(grid.df)
        kernels.stream_fluid_velocity_distribution(grid)
        np.testing.assert_allclose(grid.df_new, expected)

    def test_kernel_7_matches_reference(self, state, rng):
        grid, _ = state
        grid.df_new[...] = grid.df
        grid.force[...] = 1e-3 * rng.standard_normal((3,) + grid.shape)
        rho, u, u_star = reference.update_velocity_loop(
            grid.df_new, grid.force, grid.tau
        )
        kernels.update_fluid_velocity(grid)
        np.testing.assert_allclose(grid.density, rho, rtol=1e-12)
        np.testing.assert_allclose(grid.velocity, u, rtol=1e-11, atol=1e-14)
        np.testing.assert_allclose(grid.velocity_shifted, u_star, rtol=1e-11, atol=1e-14)

    def test_kernel_9_copies_buffers(self, state, rng):
        grid, _ = state
        grid.df_new[...] = rng.standard_normal(grid.df_new.shape)
        kernels.copy_fluid_velocity_distribution(grid)
        np.testing.assert_array_equal(grid.df, grid.df_new)


class TestKernel8:
    def test_move_fibers_advects(self, state):
        grid, structure = state
        grid.velocity[...] = 0.0
        grid.velocity[0] = 0.1
        before = structure.sheets[0].positions.copy()
        kernels.move_fibers(structure, grid)
        np.testing.assert_allclose(
            structure.sheets[0].positions[..., 0], before[..., 0] + 0.1, rtol=1e-12
        )
