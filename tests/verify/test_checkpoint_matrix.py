"""Cross-variant checkpoint portability matrix.

A checkpoint is written in the gathered global layout, so a file saved
by any solver variant must restore bit-identically into every other
variant — the property the resilient runner's worker-death fallback
(cube -> sequential) and the operator's "resume on a different machine
shape" workflow both depend on.  The matrix runs each writer once,
then fans the file out to all readers and compares every state array
exactly (no tolerance: restore is I/O, not physics).
"""

import numpy as np
import pytest

from repro.api import Simulation
from repro.config import SimulationConfig, StructureConfig
from repro.verify.oracle import _seeded_initial_fluid, variant_config

pytestmark = [pytest.mark.verify, pytest.mark.slow]

VARIANTS = [
    "sequential",
    "fused",
    "inplace",
    "batched",
    "openmp",
    "cube",
    "async_cube",
    "distributed",
    "hybrid",
]

_FIELDS = ("df", "density", "velocity", "velocity_shifted", "force")


def _config(variant):
    base = SimulationConfig(
        fluid_shape=(8, 8, 8),
        tau=0.8,
        cube_size=4,
        num_threads=2,
        structure=StructureConfig(kind="flat_sheet", num_fibers=3, nodes_per_fiber=3),
    )
    return variant_config(base, variant)


@pytest.fixture(scope="module")
def written_checkpoints(tmp_path_factory):
    """One checkpoint per writer variant, after 2 steps from shared state."""
    root = tmp_path_factory.mktemp("ckpt_matrix")
    paths = {}
    for writer in VARIANTS:
        config = _config(writer)
        with Simulation(
            config, initial_fluid=_seeded_initial_fluid(config, 31)
        ) as sim:
            sim.run(2)
            path = root / f"{writer}.npz"
            sim.checkpoint(path)
            paths[writer] = (path, _snapshot(sim))
    return paths


def _snapshot(sim):
    state = {name: np.array(getattr(sim.fluid, name)) for name in _FIELDS}
    for si, sheet in enumerate(sim.structure.sheets):
        state[f"sheet{si}.positions"] = np.array(sheet.positions)
        state[f"sheet{si}.velocity"] = np.array(sheet.velocity)
    state["time_step"] = sim.time_step
    return state


@pytest.mark.parametrize("reader", VARIANTS)
@pytest.mark.parametrize("writer", VARIANTS)
def test_restore_is_bit_identical(written_checkpoints, writer, reader):
    path, expected = written_checkpoints[writer]
    with Simulation.from_checkpoint(path, _config(reader)) as restored:
        assert restored.time_step == expected["time_step"]
        for name in _FIELDS:
            np.testing.assert_array_equal(
                getattr(restored.fluid, name), expected[name], err_msg=name
            )
        for si, sheet in enumerate(restored.structure.sheets):
            np.testing.assert_array_equal(
                sheet.positions, expected[f"sheet{si}.positions"]
            )
            np.testing.assert_array_equal(
                sheet.velocity, expected[f"sheet{si}.velocity"]
            )


@pytest.mark.parametrize("writer", ["sequential", "cube", "inplace"])
def test_restored_run_continues_identically(written_checkpoints, writer, tmp_path):
    """Stepping after restore matches an uninterrupted run bit-for-bit
    in the restored variant itself (checkpoint is transparent)."""
    config = _config(writer)
    with Simulation(
        config, initial_fluid=_seeded_initial_fluid(config, 31)
    ) as straight:
        straight.run(4)
        reference = _snapshot(straight)

    path, _ = written_checkpoints[writer]
    with Simulation.from_checkpoint(path, config) as resumed:
        resumed.run(2)  # 2 steps at checkpoint + 2 more = 4
        assert resumed.time_step == reference["time_step"]
        for name in _FIELDS:
            np.testing.assert_array_equal(
                getattr(resumed.fluid, name), reference[name], err_msg=name
            )


class TestOddPhaseCheckpoint:
    """Checkpoints taken mid-AA-cycle (odd step count, ``aa_phase=1``).

    After an odd number of in-place steps, the single lattice is stored
    in the AA-encoded layout — direction ``i`` lives in slot ``opp(i)``.
    The checkpoint stores the raw encoded lattice plus the phase flag;
    the restore path decodes for two-lattice readers and adopts the raw
    state for in-place readers, so both directions of the matrix keep
    their bit-exactness through the middle of an AA cycle.
    """

    @pytest.fixture(scope="class")
    def odd_checkpoint(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("ckpt_odd")
        config = _config("inplace")
        with Simulation(
            config, initial_fluid=_seeded_initial_fluid(config, 31)
        ) as sim:
            sim.run(3)  # odd: the lattice is mid-cycle, aa_phase == 1
            assert sim._fluid.aa_phase == 1
            path = root / "inplace_odd.npz"
            sim.checkpoint(path)
            return path, _snapshot(sim)

    @pytest.mark.parametrize("reader", VARIANTS)
    def test_odd_checkpoint_restores_into_every_variant(
        self, odd_checkpoint, reader
    ):
        path, expected = odd_checkpoint
        with Simulation.from_checkpoint(path, _config(reader)) as restored:
            assert restored.time_step == expected["time_step"]
            for name in _FIELDS:
                np.testing.assert_array_equal(
                    getattr(restored.fluid, name), expected[name], err_msg=name
                )

    def test_phase_flag_survives_round_trip(self, odd_checkpoint, tmp_path):
        """An inplace reader adopts the encoded lattice and phase flag,
        and re-saving reproduces both."""
        path, _ = odd_checkpoint
        config = _config("inplace")
        with Simulation.from_checkpoint(path, config) as restored:
            assert restored._fluid.aa_phase == 1
            resaved = tmp_path / "resaved.npz"
            restored.checkpoint(resaved)
        with Simulation.from_checkpoint(resaved, config) as again:
            assert again._fluid.aa_phase == 1

    def test_two_lattice_reader_restores_to_natural_phase(self, odd_checkpoint):
        """Non-inplace readers decode on restore: their grid is in the
        natural layout with the phase flag cleared."""
        path, _ = odd_checkpoint
        with Simulation.from_checkpoint(path, _config("sequential")) as restored:
            assert restored._fluid.aa_phase == 0
            assert restored._fluid.df_new is not None

    def test_resume_from_mid_cycle_continues_identically(self, odd_checkpoint):
        """3 checkpointed steps + 2 resumed == 5 straight steps, exactly."""
        config = _config("inplace")
        with Simulation(
            config, initial_fluid=_seeded_initial_fluid(config, 31)
        ) as straight:
            straight.run(5)
            reference = _snapshot(straight)

        path, _ = odd_checkpoint
        with Simulation.from_checkpoint(path, config) as resumed:
            resumed.run(2)
            assert resumed.time_step == reference["time_step"]
            for name in _FIELDS:
                np.testing.assert_array_equal(
                    getattr(resumed.fluid, name), reference[name], err_msg=name
                )
