"""The in-place AA-pattern solver is physics-equivalent to sequential
and carries half the lattice memory.

Gates the ``variant="inplace"`` solver four ways:

* the differential oracle locks it step-by-step against ``sequential``
  for both collision operators, including the hard configuration —
  moving bounce-back walls + outflow + external body force — where the
  even-phase boundary repair writes through the AA encoding;
* a seeded sweep of generated configs (the same generator the
  ``python -m repro.verify`` gate uses), so equivalence is not limited
  to hand-picked shapes;
* phase parity: the AA cycle alternates two different kernels, so the
  equivalence is checked after both an even and an odd number of steps
  — a bug confined to one phase cannot hide behind the other;
* memory regression: the grid holds exactly one lattice (half the
  fused footprint) and a steady-state fluid step allocates no numpy
  array, mirroring the fused zero-allocation gate.
"""

import tracemalloc
from dataclasses import replace

import numpy as np
import pytest

from repro.api import Simulation
from repro.config import BoundaryConfig, SimulationConfig, StructureConfig
from repro.core.lbm.fields import FluidGrid
from repro.verify import compare_variants
from repro.verify.generate import generate_cases
from repro.verify.golden import GOLDEN_CASES, GOLDEN_VARIANTS, compute_baseline
from repro.verify.oracle import _seeded_initial_fluid, variant_config

pytestmark = pytest.mark.verify

_FIELDS = ("df", "density", "velocity", "velocity_shifted", "force")


def _fsi_config(**overrides):
    defaults = dict(
        fluid_shape=(8, 8, 8),
        tau=0.8,
        structure=StructureConfig(kind="flat_sheet", num_fibers=3, nodes_per_fiber=3),
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestOracleEquivalence:
    @pytest.mark.parametrize("operator", ["bgk", "trt"])
    def test_fsi_matches_sequential(self, operator):
        config = _fsi_config(collision_operator=operator)
        divergence = compare_variants(
            config, "sequential", "inplace", num_steps=4, state_seed=7
        )
        assert divergence is None

    @pytest.mark.parametrize("operator", ["bgk", "trt"])
    def test_walls_outflow_and_body_force(self, operator):
        """The even-phase boundary repair: a moving bounce-back lid, a
        no-slip floor, an outflow face, and a constant body force, all
        applied through the AA-encoded lattice on even steps."""
        config = _fsi_config(
            collision_operator=operator,
            external_force=(1e-5, 0.0, 0.0),
            boundaries=(
                BoundaryConfig(
                    "bounce_back", "z", "high", wall_velocity=(0.02, 0.0, 0.0)
                ),
                BoundaryConfig("bounce_back", "z", "low"),
                BoundaryConfig("outflow", "x", "high"),
            ),
        )
        divergence = compare_variants(
            config, "sequential", "inplace", num_steps=4, state_seed=7
        )
        assert divergence is None

    def test_generated_case_sweep(self):
        for case in generate_cases(20150715, 6):
            config = replace(case.config(), num_threads=1)
            divergence = compare_variants(
                config,
                "sequential",
                "inplace",
                num_steps=case.steps,
                state_seed=case.state_seed,
            )
            assert divergence is None, f"{case.describe()}: {divergence}"


class TestPhaseParity:
    """Exact state equality after both halves of the AA cycle.

    Each in-place step advances physics by exactly one timestep; the
    grid merely alternates between the natural layout (after odd steps
    complete the cycle) and the AA-encoded layout (after even steps).
    Stopping after 3 steps (mid-cycle, ``aa_phase=1``) and after 4
    (cycle boundary, ``aa_phase=0``) must both reproduce the sequential
    state bit-for-bit — the decode path and the kernels are pinned
    independently.
    """

    @pytest.mark.parametrize("steps,expected_phase", [(3, 1), (4, 0)])
    def test_decoded_state_equals_sequential_exactly(self, steps, expected_phase):
        config = _fsi_config(
            external_force=(1e-5, 0.0, 0.0),
            boundaries=(
                BoundaryConfig("bounce_back", "z", "high"),
                BoundaryConfig("outflow", "x", "high"),
            ),
        )
        states = {}
        for variant in ("sequential", "inplace"):
            cfg = variant_config(config, variant)
            with Simulation(
                cfg, initial_fluid=_seeded_initial_fluid(cfg, 31)
            ) as sim:
                sim.run(steps)
                if variant == "inplace":
                    assert sim._fluid.aa_phase == expected_phase
                states[variant] = {
                    name: np.array(getattr(sim.fluid, name)) for name in _FIELDS
                }
                states[variant]["positions"] = np.array(
                    sim.structure.sheets[0].positions
                )
        for name, expected in states["sequential"].items():
            np.testing.assert_array_equal(
                states["inplace"][name], expected, err_msg=name
            )


class TestGoldenBaselines:
    def test_inplace_variant_registered(self):
        assert GOLDEN_VARIANTS.get("_inplace") == "inplace"

    @pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
    def test_inplace_digest_equals_sequential(self, name):
        """The AA step is not just tolerance-close — it reproduces the
        sequential golden digest exactly (bit-identical physics)."""
        case = GOLDEN_CASES[name]
        sequential = compute_baseline(name, case, "sequential")
        inplace = compute_baseline(name, case, "inplace")
        assert inplace["digest"] == sequential["digest"]
        assert inplace["stats"] == sequential["stats"]


class TestMemoryRegression:
    def test_grid_holds_a_single_lattice(self):
        """The in-place grid has no ``df_new``: its distribution buffers
        are exactly half the fused grid's."""
        two = FluidGrid((16, 16, 16), tau=0.8)
        one = FluidGrid((16, 16, 16), tau=0.8, single_lattice=True)
        assert one.df_new is None
        assert two.df_new is not None
        bytes_two = two.df.nbytes + two.df_new.nbytes
        assert two.df.nbytes == one.df.nbytes
        assert bytes_two / one.df.nbytes == 2.0

    def test_steady_state_fluid_step_allocates_no_second_lattice(self):
        """After warmup, five in-place fluid steps allocate no numpy
        array — in particular no transient lattice-sized buffer (16^3
        doubles = 32768 bytes; 19 of them per lattice).  The traced
        high-water mark stays below a fraction of one scalar field,
        mirroring the fused zero-allocation gate."""
        config = SimulationConfig(
            fluid_shape=(16, 16, 16),
            tau=0.8,
            solver="inplace",
            structure=StructureConfig(kind="none"),
        )
        with Simulation(config) as sim:
            sim.run(4)  # warmup covering both phases: arena, shift table
            tracemalloc.start()
            tracemalloc.reset_peak()
            sim.run(5)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        assert peak < 8192, f"inplace step allocated {peak} bytes at peak"

    def test_swap_is_rejected_on_single_lattice(self):
        from repro.errors import ConfigurationError

        fluid = FluidGrid((4, 4, 4), tau=0.8, single_lattice=True)
        with pytest.raises(ConfigurationError):
            fluid.swap_distributions()
