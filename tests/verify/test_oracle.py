"""Differential oracle: variant agreement and divergence localization."""

from dataclasses import replace

import pytest

from repro.config import SimulationConfig, StructureConfig
from repro.verify import DifferentialOracle, compare_variants
from repro.verify.oracle import variant_config

pytestmark = pytest.mark.verify


def _base_config(**overrides):
    defaults = dict(
        fluid_shape=(8, 8, 8),
        tau=0.8,
        cube_size=4,
        num_threads=2,
        structure=StructureConfig(kind="flat_sheet", num_fibers=3, nodes_per_fiber=3),
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestAgreement:
    @pytest.mark.parametrize(
        "variant", ["openmp", "cube", "async_cube", "distributed", "hybrid"]
    )
    def test_variant_matches_sequential(self, variant):
        divergence = compare_variants(
            _base_config(), "sequential", variant, num_steps=3, state_seed=5
        )
        assert divergence is None

    def test_cube_matches_async_cube(self):
        divergence = compare_variants(
            _base_config(), "cube", "async_cube", num_steps=3, state_seed=5
        )
        assert divergence is None


class TestDivergenceDetection:
    def test_tau_perturbation_is_caught_and_localized(self):
        """The acceptance-criteria self-test: tau off by 1e-3 must be caught,
        with the divergent step, field, and cube identified."""
        config = _base_config()
        perturbed = replace(config, tau=config.tau + 1e-3, viscosity=None)
        oracle = DifferentialOracle(
            config, "sequential", "cube", config_b=perturbed, state_seed=5
        )
        divergence = oracle.run(num_steps=3)
        assert divergence is not None
        assert divergence.step >= 1
        assert divergence.field in ("df", "density", "velocity", "velocity_shifted", "force")
        assert divergence.max_abs_error > divergence.tolerance
        # variant_b is the cube solver, so the worst element maps to a cube
        assert divergence.cube is not None
        assert len(divergence.cube) == 3
        text = str(divergence)
        assert "step" in text and divergence.field in text

    def test_no_cube_localization_without_cube_variant(self):
        """When neither variant is cube-blocked there is no owning cube;
        the report must still name step, field, and global index."""
        config = _base_config()
        perturbed = replace(config, tau=config.tau + 1e-3, viscosity=None)
        oracle = DifferentialOracle(
            config, "sequential", "sequential", config_b=perturbed, state_seed=5
        )
        divergence = oracle.run(num_steps=3)
        assert divergence is not None
        assert divergence.cube is None
        assert divergence.index


class TestVariantConfig:
    def test_thread_counts_clamped_per_variant(self):
        config = _base_config(num_threads=64)
        assert variant_config(config, "sequential").num_threads == 1
        cube_cfg = variant_config(config, "cube")
        assert cube_cfg.num_threads <= 8  # 8^3 grid, k=4 -> 2 cubes per dim
        dist_cfg = variant_config(config, "distributed")
        assert dist_cfg.num_threads <= config.fluid_shape[0]

    def test_solver_field_set(self):
        config = _base_config()
        assert variant_config(config, "hybrid").solver == "hybrid"
