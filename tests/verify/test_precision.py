"""Precision-policy verification: float32/mixed vs the float64 truth.

The array backend's contract (:mod:`repro.core.backend`) has three
checkable parts:

* **float64 is untouched** — the golden-digest suite pins that path
  bit-exactly; here we pin the *pluggability*: layout control, backend
  injection and the per-dtype scatter dispatch.
* **float32/mixed track float64 within analytic bounds** — the same
  seeded run at reduced precision stays within single-precision
  rounding of the double-precision reference, and the mixed policy
  (float64 accumulation under float32 storage) tracks strictly tighter
  than pure float32.
* **precision round-trips through checkpoints** — every solver variant
  can write at one policy and restore under another, with the cast
  (pure widening/narrowing, no arithmetic) being the only difference.
"""

import tracemalloc
from dataclasses import replace

import numpy as np
import pytest

from repro.api import Simulation
from repro.config import SimulationConfig, StructureConfig
from repro.core.backend import (
    ArrayBackend,
    backend_for,
    dtype_bytes,
    invariant_scale,
    oracle_tolerance,
    resolve_precision,
    set_default_backend,
    state_tolerance,
)
from repro.core.lbm.fields import FluidGrid
from repro.verify.oracle import DifferentialOracle, _seeded_initial_fluid, variant_config

pytestmark = pytest.mark.verify

VARIANTS = [
    "sequential",
    "fused",
    "inplace",
    "batched",
    "openmp",
    "cube",
    "async_cube",
    "distributed",
    "hybrid",
]

_FIELDS = ("df", "density", "velocity", "velocity_shifted", "force")


def _config(variant="sequential", precision="float64"):
    base = SimulationConfig(
        fluid_shape=(8, 8, 8),
        tau=0.8,
        cube_size=4,
        num_threads=2,
        precision=precision,
        structure=StructureConfig(kind="flat_sheet", num_fibers=3, nodes_per_fiber=3),
    )
    return variant_config(base, variant)


def _final_state(precision, steps=5, solver="sequential"):
    config = _config(solver, precision)
    with Simulation(config, initial_fluid=_seeded_initial_fluid(config, 31)) as sim:
        sim.run(steps)
        fluid = sim.fluid
        return {
            name: np.asarray(getattr(fluid, name), dtype=np.float64)
            for name in ("df", "density", "velocity")
        }


# ----------------------------------------------------------------------
# config plumbing
# ----------------------------------------------------------------------
def test_config_precision_round_trip():
    config = _config(precision="mixed")
    assert SimulationConfig.from_dict(config.to_dict()) == config


def test_config_without_precision_entry_defaults_to_float64():
    data = _config().to_dict()
    del data["precision"]  # a manifest written before the policy existed
    assert SimulationConfig.from_dict(data).precision == "float64"


def test_config_rejects_unknown_precision():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        replace(_config(), precision="float16")


@pytest.mark.parametrize("precision", ["float64", "float32", "mixed"])
def test_grid_storage_and_arena_compute_dtypes(precision):
    policy = resolve_precision(precision)
    grid = FluidGrid((4, 4, 4), precision=precision)
    for name in _FIELDS:
        arr = getattr(grid, name)
        assert arr.dtype == policy.storage, name
    assert grid.arena.scalar("probe").dtype == policy.compute


# ----------------------------------------------------------------------
# numerics: reduced precision tracks the float64 reference
# ----------------------------------------------------------------------
def test_float32_tracks_float64_within_single_precision_bounds():
    r64 = _final_state("float64")
    r32 = _final_state("float32")
    for name in r64:
        np.testing.assert_allclose(
            r32[name], r64[name], rtol=1e-4, atol=5e-6, err_msg=name
        )


def test_mixed_tracks_tighter_than_float32():
    """float64 accumulation under float32 storage must show up as a
    strictly smaller drift from the double-precision reference."""
    r64 = _final_state("float64")
    r32 = _final_state("float32")
    rmx = _final_state("mixed")
    for name in r64:
        np.testing.assert_allclose(
            rmx[name], r64[name], rtol=2e-5, atol=1e-6, err_msg=name
        )
    drift32 = float(np.abs(r32["df"] - r64["df"]).max())
    driftmx = float(np.abs(rmx["df"] - r64["df"]).max())
    assert driftmx <= drift32


@pytest.mark.slow
@pytest.mark.parametrize("precision", ["float32", "mixed"])
@pytest.mark.parametrize("variant", ["fused", "inplace", "batched", "cube"])
def test_cross_variant_oracle_at_reduced_precision(precision, variant):
    """All variants still agree pairwise when running *at* a reduced
    policy — the per-precision oracle tolerances absorb reordered
    single-precision sums, nothing more."""
    oracle = DifferentialOracle(
        _config(precision=precision), "sequential", variant
    )
    divergence = oracle.run(3)
    assert divergence is None, str(divergence)


def test_tolerance_tables_widen_monotonically():
    for lookup in (state_tolerance, oracle_tolerance):
        r64, a64 = lookup("float64")
        rmx, amx = lookup("mixed")
        r32, a32 = lookup("float32")
        assert r64 < rmx <= r32
        assert a64 < amx <= a32
    assert invariant_scale("float64") == 1.0
    assert 1.0 < invariant_scale("mixed") <= invariant_scale("float32")


def test_state_allclose_uses_per_precision_tolerance():
    g32 = FluidGrid((4, 4, 4), precision="float32")
    h32 = FluidGrid((4, 4, 4), precision="float32")
    h32.df += np.float32(1e-7)  # sub-f32-resolution wiggle
    assert g32.state_allclose(h32)

    g64 = FluidGrid((4, 4, 4))
    h64 = FluidGrid((4, 4, 4))
    h64.df += 1e-7  # far beyond the f64 tolerance
    assert not g64.state_allclose(h64)


def test_invariants_hold_at_float32():
    from repro.verify.invariants import InvariantSuite

    config = _config("fused", "float32")
    suite = InvariantSuite.default(config)
    with Simulation(
        config,
        initial_fluid=_seeded_initial_fluid(config, 31),
        invariants=suite,
    ) as sim:
        sim.run(4)
    assert suite.checks_passed == 4


# ----------------------------------------------------------------------
# cross-precision checkpoint matrix
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestCrossPrecisionCheckpoints:
    """Write at one policy, restore under another, for every variant.

    The restore is a pure dtype cast (widening f32 -> f64 is exact;
    narrowing rounds once), so equality against the writer's snapshot
    is asserted *exactly* after applying that cast — no tolerance.
    """

    @pytest.fixture(scope="class")
    def float32_checkpoints(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("ckpt_f32")
        paths = {}
        for writer in VARIANTS:
            config = _config(writer, "float32")
            with Simulation(
                config, initial_fluid=_seeded_initial_fluid(config, 31)
            ) as sim:
                sim.run(2)
                path = root / f"{writer}.npz"
                sim.checkpoint(path)
                fluid = sim.fluid
                snap = {n: np.array(getattr(fluid, n)) for n in _FIELDS}
                paths[writer] = (path, snap)
        return paths

    @pytest.fixture(scope="class")
    def float64_checkpoint(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("ckpt_f64")
        config = _config("sequential", "float64")
        with Simulation(
            config, initial_fluid=_seeded_initial_fluid(config, 31)
        ) as sim:
            sim.run(2)
            path = root / "sequential.npz"
            sim.checkpoint(path)
            fluid = sim.fluid
            return path, {n: np.array(getattr(fluid, n)) for n in _FIELDS}

    @pytest.mark.parametrize("writer", VARIANTS)
    def test_float32_writer_restores_into_float64_reader(
        self, float32_checkpoints, writer
    ):
        path, expected = float32_checkpoints[writer]
        with Simulation.from_checkpoint(
            path, _config("sequential", "float64")
        ) as restored:
            for name in _FIELDS:
                np.testing.assert_array_equal(
                    np.asarray(getattr(restored.fluid, name), dtype=np.float64),
                    np.asarray(expected[name], dtype=np.float64),
                    err_msg=name,
                )

    @pytest.mark.parametrize("reader", VARIANTS)
    def test_float64_writer_restores_into_float32_reader(
        self, float64_checkpoint, reader
    ):
        path, expected = float64_checkpoint
        with Simulation.from_checkpoint(
            path, _config(reader, "float32")
        ) as restored:
            for name in _FIELDS:
                np.testing.assert_array_equal(
                    np.asarray(getattr(restored.fluid, name), dtype=np.float32),
                    expected[name].astype(np.float32),
                    err_msg=name,
                )

    def test_precision_name_survives_round_trip(self, tmp_path):
        from repro.io.checkpoint import load_checkpoint, save_checkpoint

        grid = FluidGrid((4, 4, 4), precision="mixed")
        path = tmp_path / "mixed.npz"
        save_checkpoint(path, grid)
        restored, _, _ = load_checkpoint(path)
        assert restored.precision.name == "mixed"
        assert restored.df.dtype == np.float32

    def test_float32_resume_continues_identically(self, float32_checkpoints):
        """Restoring at the writer's own policy is transparent: 2
        checkpointed + 2 resumed steps == 4 straight steps, exactly."""
        config = _config("fused", "float32")
        with Simulation(
            config, initial_fluid=_seeded_initial_fluid(config, 31)
        ) as straight:
            straight.run(4)
            fluid = straight.fluid
            reference = {n: np.array(getattr(fluid, n)) for n in _FIELDS}
        path, _ = float32_checkpoints["fused"]
        with Simulation.from_checkpoint(path, config) as resumed:
            resumed.run(2)
            for name in _FIELDS:
                np.testing.assert_array_equal(
                    getattr(resumed.fluid, name), reference[name], err_msg=name
                )


# ----------------------------------------------------------------------
# memory footprint
# ----------------------------------------------------------------------
def _fluid_alloc_peak(precision):
    tracemalloc.start()
    tracemalloc.reset_peak()
    grid = FluidGrid((16, 16, 16), precision=precision)
    grid.arena.vector("momentum")
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del grid
    return peak


def test_float32_fluid_peak_is_half_of_float64():
    peak64 = _fluid_alloc_peak("float64")
    peak32 = _fluid_alloc_peak("float32")
    assert 0.4 < peak32 / peak64 < 0.62


# ----------------------------------------------------------------------
# kernel-4 scatter: dispatch recalibration + forced bit-equality
# ----------------------------------------------------------------------
def test_scatter_crossover_scales_with_itemsize():
    from repro.core.ib.spreading import scatter_method

    # float64 target: crossover at one contribution per grid node
    # (the historical threshold, reproduced exactly).
    assert scatter_method(1000, 999, 8) == "add_at"
    assert scatter_method(1000, 1000, 8) == "bincount"
    # float32 target: bincount's dense minlength output stays float64
    # (8 B/node) while the rest of the kernel shrinks, so it needs
    # twice the contributions before it wins.
    assert scatter_method(1000, 1000, 4) == "add_at"
    assert scatter_method(1000, 1999, 4) == "add_at"
    assert scatter_method(1000, 2000, 4) == "bincount"


@pytest.mark.parametrize("dtype", [np.float64, np.float32])
def test_forced_scatter_methods_bit_identical(dtype):
    """bincount and add_at stay bit-identical at every storage dtype:
    sub-f64 targets accumulate through a shared float64 staging field,
    so both methods sum identical doubles in identical order."""
    from repro.core.ib.spreading import flatten_stencil, scatter_flat

    rng = np.random.default_rng(7)
    grid_shape = (8, 8, 8)
    n, s = 40, 4
    indices = rng.integers(0, 8, size=(n, s, 3))
    weights = rng.random((n, s, s, s))
    flat_idx, flat_w = flatten_stencil(indices, weights, grid_shape)
    values = rng.standard_normal((n, 3))

    target_a = np.zeros((3,) + grid_shape, dtype=dtype)
    target_b = np.zeros_like(target_a)
    scatter_flat(flat_idx, flat_w, values, target_a, method="add_at")
    scatter_flat(flat_idx, flat_w, values, target_b, method="bincount")
    assert target_a.dtype == dtype
    np.testing.assert_array_equal(target_a, target_b)


# ----------------------------------------------------------------------
# layout control and backend injection
# ----------------------------------------------------------------------
def test_fortran_order_layout_control():
    backend = backend_for("float32", order="F")
    arr = backend.zeros((3, 4, 5))
    assert arr.flags.f_contiguous and arr.dtype == np.float32
    # per-call override beats the backend default
    assert backend.empty((3, 4, 5), order="C").flags.c_contiguous
    # grids stay C-ordered (the layout every kernel's block copies assume)
    assert FluidGrid((4, 4, 4), precision="float32").df.flags.c_contiguous


class _RecordingXP:
    """Duck-typed stand-in for an injected array module (cupy-shaped)."""

    def __init__(self):
        self.calls = []

    def empty(self, shape, dtype=None, order="C"):
        self.calls.append(("empty", tuple(shape)))
        return np.empty(shape, dtype=dtype, order=order)

    def zeros(self, shape, dtype=None, order="C"):
        self.calls.append(("zeros", tuple(shape)))
        return np.zeros(shape, dtype=dtype, order=order)

    def full(self, shape, fill, dtype=None, order="C"):
        self.calls.append(("full", tuple(shape)))
        return np.full(shape, fill, dtype=dtype, order=order)

    def asarray(self, values, dtype=None):
        self.calls.append(("asarray", None))
        return np.asarray(values, dtype=dtype)


def test_backend_injection_routes_every_field_allocation():
    fake = _RecordingXP()
    previous = set_default_backend(ArrayBackend(xp=fake))
    try:
        grid = FluidGrid((4, 4, 4), precision="float32")
    finally:
        set_default_backend(previous)
    kinds = {name for name, _ in fake.calls}
    assert {"empty", "zeros", "full"} <= kinds
    # every persistent field came out of the injected module
    assert sum(1 for name, _ in fake.calls if name != "asarray") >= 6
    assert grid.df.dtype == np.float32


# ----------------------------------------------------------------------
# machine-model scaling
# ----------------------------------------------------------------------
def test_step_bytes_scales_fluid_traffic_only():
    from repro.machine.workload import step_bytes

    full = step_bytes(1000, 0, dtype_bytes=8)
    half = step_bytes(1000, 0, dtype_bytes=4)
    assert half == pytest.approx(full / 2)
    # fiber-kernel traffic stays float64 under every policy
    fiber_only = step_bytes(0, 100, dtype_bytes=4)
    assert fiber_only == step_bytes(0, 100, dtype_bytes=8)


def test_perf_model_precision_speedup():
    from repro.machine.perf_model import PerformanceModel
    from repro.machine.spec import abu_dhabi

    model = PerformanceModel(abu_dhabi())
    shape, fibers = (124, 64, 64), (52, 52)
    assert model.precision_time_factor(shape, fibers, "float64") == 1.0
    speedup = model.precision_speedup(shape, fibers, "float32")
    assert 1.0 < speedup < 2.0
    assert dtype_bytes("float32") == dtype_bytes("mixed") == 4
