"""An invariant violation inside a worker surfaces as InvariantError.

Before the executor fix, any exception raised by a worker's step hook
was reported as a generic ``WorkerError`` wrapping the original, so a
caller could not catch invariant violations distinctly or read the
thread/cube localization.  ``_primary_error`` now unwraps a worker's
``InvariantError`` and stamps the observing thread onto it.
"""

import pytest

from repro.api import Simulation
from repro.config import SimulationConfig, StructureConfig
from repro.errors import InvariantError, WorkerError
from repro.resilience import Fault, FaultInjector, FaultPlan
from repro.verify import InvariantSuite
from repro.verify.oracle import _seeded_initial_fluid

pytestmark = pytest.mark.verify


def _config(solver):
    return SimulationConfig(
        fluid_shape=(8, 8, 8),
        tau=0.8,
        solver=solver,
        num_threads=2,
        cube_size=2,
        structure=StructureConfig(kind="flat_sheet", num_fibers=3, nodes_per_fiber=3),
    )


def _corrupting_sim(solver, step=2, field="df"):
    config = _config(solver)
    plan = FaultPlan.of(
        [Fault(kind="corrupt_field", step=step, tid=0, fluid_field=field)], seed=3
    )
    sim = Simulation(
        config,
        fault_injector=FaultInjector(plan),
        initial_fluid=_seeded_initial_fluid(config, 13),
        invariants=InvariantSuite.default(config),
    )
    return sim


class TestCubeWorkerSurfacing:
    def test_invariant_error_unwrapped_with_thread_and_cube(self):
        with _corrupting_sim("cube") as sim:
            with pytest.raises(InvariantError) as exc:
                sim.run(4)
        err = exc.value
        assert not isinstance(err, WorkerError)
        assert err.invariant == "finite_fields"
        assert err.tid is not None
        assert err.cube is not None and len(err.cube) == 3
        text = str(err)
        assert "thread" in text and "cube" in text

    def test_async_cube_surfaces_too(self):
        with _corrupting_sim("async_cube") as sim:
            with pytest.raises(InvariantError):
                sim.run(4)


class TestOpenmpWorkerSurfacing:
    def test_invariant_error_unwrapped_with_thread(self):
        """The slab solver has no cubes; the thread is still stamped."""
        with _corrupting_sim("openmp") as sim:
            with pytest.raises(InvariantError) as exc:
                sim.run(4)
        assert exc.value.tid is not None
        assert not isinstance(exc.value, WorkerError)


class TestContrast:
    def test_without_invariants_corruption_is_silent_at_first(self):
        """Control: the fault alone raises nothing at the faulted step —
        the sentinel is what converts corruption into a typed error."""
        config = _config("cube")
        plan = FaultPlan.of(
            [Fault(kind="corrupt_field", step=2, tid=0, fluid_field="force")], seed=3
        )
        with Simulation(
            config,
            fault_injector=FaultInjector(plan),
            initial_fluid=_seeded_initial_fluid(config, 13),
        ) as sim:
            sim.run(2)  # corrupting step completes without an exception

    def test_non_invariant_worker_failure_still_wrapped(self):
        """A killed worker keeps its existing WorkerError reporting."""
        config = _config("cube")
        plan = FaultPlan.of([Fault(kind="kill_worker", step=2, tid=1)], seed=3)
        with Simulation(
            config,
            fault_injector=FaultInjector(plan),
            initial_fluid=_seeded_initial_fluid(config, 13),
        ) as sim:
            with pytest.raises(WorkerError):
                sim.run(4)
