"""Physics invariant checkers: pass on sane states, catch violations."""

import numpy as np
import pytest

from repro.api import Simulation
from repro.config import SimulationConfig, StructureConfig
from repro.core.ib import geometry
from repro.core.lbm.fields import FluidGrid
from repro.errors import InvariantError
from repro.verify import (
    DistributionPositivity,
    FiberArcLength,
    FiniteFields,
    InvariantSuite,
    MassConservation,
    MomentumConsistency,
)
from repro.verify.oracle import _seeded_initial_fluid

pytestmark = pytest.mark.verify


def _sane_fluid(seed=0, shape=(8, 6, 4)):
    grid = FluidGrid(shape, tau=0.8)
    rng = np.random.default_rng(seed)
    grid.initialize_equilibrium(
        density=1.0 + 0.01 * rng.standard_normal(grid.shape),
        velocity=0.01 * rng.standard_normal((3,) + grid.shape),
    )
    return grid


class TestFiniteFields:
    def test_passes_on_sane_state(self):
        FiniteFields().check(_sane_fluid(), None, step=1)

    def test_catches_nan_in_fluid(self):
        grid = _sane_fluid()
        grid.velocity[1, 2, 3, 0] = np.nan
        with pytest.raises(InvariantError) as exc:
            FiniteFields().check(grid, None, step=7)
        assert exc.value.invariant == "finite_fields"
        assert exc.value.field == "velocity"
        assert exc.value.step == 7

    def test_catches_inf_in_fiber_positions(self):
        grid = _sane_fluid()
        structure = geometry.flat_sheet((8, 6, 4), num_fibers=3, nodes_per_fiber=3)
        structure.sheets[0].positions[0, 0, 0] = np.inf
        with pytest.raises(InvariantError) as exc:
            FiniteFields().check(grid, structure, step=1)
        assert "sheet0" in exc.value.field


class TestMassConservation:
    def test_passes_when_mass_constant(self):
        grid = _sane_fluid()
        inv = MassConservation()
        inv.bind(grid, None)
        inv.check(grid, None, step=1)

    def test_catches_mass_drift(self):
        grid = _sane_fluid()
        inv = MassConservation()
        inv.bind(grid, None)
        grid.df[0] *= 1.001
        with pytest.raises(InvariantError) as exc:
            inv.check(grid, None, step=3)
        assert exc.value.invariant == "mass_conservation"
        assert exc.value.value > exc.value.limit

    def test_first_check_without_bind_establishes_baseline(self):
        grid = _sane_fluid()
        inv = MassConservation()
        inv.check(grid, None, step=1)  # no bind: adopts this state
        inv.check(grid, None, step=2)


class TestMomentumConsistency:
    def test_holds_over_sequential_run_with_structure_and_force(self):
        config = SimulationConfig(
            fluid_shape=(8, 8, 8),
            tau=0.7,
            structure=StructureConfig(
                kind="flat_sheet", num_fibers=4, nodes_per_fiber=4
            ),
            external_force=(1e-5, 0.0, 0.0),
        )
        suite = InvariantSuite.default(config)
        sim = Simulation(
            config,
            initial_fluid=_seeded_initial_fluid(config, 42),
            invariants=suite,
        )
        sim.run(8)
        assert suite.checks_passed == 8

    def test_catches_unexplained_momentum(self):
        grid = _sane_fluid()
        inv = MomentumConsistency()
        inv.check(grid, None, step=1)  # warm-up records baseline
        grid.df[1] += 1e-4  # inject momentum with no matching force
        with pytest.raises(InvariantError) as exc:
            inv.check(grid, None, step=2)
        assert exc.value.invariant == "momentum_consistency"


class TestDistributionPositivity:
    def test_passes_on_equilibrium(self):
        DistributionPositivity().check(_sane_fluid(), None, step=1)

    def test_catches_negative_distribution(self):
        grid = _sane_fluid()
        grid.df[3, 1, 1, 1] = -0.5
        with pytest.raises(InvariantError) as exc:
            DistributionPositivity().check(grid, None, step=2)
        assert exc.value.value == pytest.approx(-0.5)


class TestFiberArcLength:
    def test_passes_on_rest_sheet(self):
        structure = geometry.flat_sheet((8, 6, 4), num_fibers=3, nodes_per_fiber=3)
        FiberArcLength().check(_sane_fluid(), structure, step=1)

    def test_catches_overstretched_fiber(self):
        structure = geometry.flat_sheet((8, 6, 4), num_fibers=3, nodes_per_fiber=3)
        structure.sheets[0].positions[0, -1] += 20.0
        with pytest.raises(InvariantError) as exc:
            FiberArcLength(max_ratio=4.0).check(_sane_fluid(), structure, step=5)
        assert exc.value.invariant == "fiber_arc_length"

    def test_no_structure_is_fine(self):
        FiberArcLength().check(_sane_fluid(), None, step=1)


class TestDefaultSuite:
    def test_gates_on_boundaries(self):
        from repro.config import BoundaryConfig

        periodic = SimulationConfig(fluid_shape=(8, 8, 8))
        names = [i.name for i in InvariantSuite.default(periodic).invariants]
        assert "momentum_consistency" in names
        assert "mass_conservation" in names

        walls = SimulationConfig(
            fluid_shape=(8, 8, 8),
            boundaries=(
                BoundaryConfig(kind="bounce_back", axis="x", side="low"),
                BoundaryConfig(kind="bounce_back", axis="x", side="high"),
            ),
        )
        names = [i.name for i in InvariantSuite.default(walls).invariants]
        assert "momentum_consistency" not in names
        assert "mass_conservation" in names

        outflow = SimulationConfig(
            fluid_shape=(8, 8, 8),
            boundaries=(BoundaryConfig(kind="outflow", axis="x", side="high"),),
        )
        names = [i.name for i in InvariantSuite.default(outflow).invariants]
        assert "mass_conservation" not in names

    def test_no_fiber_check_for_fluid_only(self):
        config = SimulationConfig(structure=StructureConfig(kind="none"))
        names = [i.name for i in InvariantSuite.default(config).invariants]
        assert "fiber_arc_length" not in names

    def test_every_must_be_positive(self):
        with pytest.raises(ValueError):
            InvariantSuite([], every=0)


class TestSuiteOnAllVariants:
    """The default suite passes per-step on every solver variant."""

    @pytest.mark.parametrize(
        "solver", ["sequential", "openmp", "cube", "async_cube", "distributed", "hybrid"]
    )
    def test_suite_passes(self, solver):
        config = SimulationConfig(
            fluid_shape=(8, 8, 8),
            tau=0.8,
            solver=solver,
            num_threads=2,
            cube_size=4,
            structure=StructureConfig(
                kind="flat_sheet", num_fibers=3, nodes_per_fiber=3
            ),
        )
        suite = InvariantSuite.default(config)
        with Simulation(
            config,
            initial_fluid=_seeded_initial_fluid(config, 11),
            invariants=suite,
        ) as sim:
            sim.run(3)
            assert suite.checks_passed == 3
            assert sim.time_step == 3
