"""Golden regression baselines: committed files match, drift is caught."""

import json
import os

import pytest

from repro.verify import (
    GOLDEN_CASES,
    check_baselines,
    compute_baseline,
    default_golden_dir,
    state_digest,
    write_baselines,
)
from repro.verify.golden import GOLDEN_VARIANTS

pytestmark = pytest.mark.verify


class TestCommittedBaselines:
    def test_every_golden_case_has_a_committed_file(self):
        directory = default_golden_dir()
        for name in GOLDEN_CASES:
            assert os.path.exists(os.path.join(directory, f"{name}.json")), (
                f"missing committed baseline for {name}; run "
                "`python -m repro.verify --regen-golden` and commit the result"
            )

    def test_current_physics_matches_committed_baselines(self):
        failures = check_baselines()
        assert failures == []


class TestRegeneration:
    def test_regen_round_trips(self, tmp_path):
        written = write_baselines(tmp_path)
        assert len(written) == len(GOLDEN_CASES) * len(GOLDEN_VARIANTS)
        assert check_baselines(tmp_path) == []

    def test_missing_file_is_a_failure_not_a_skip(self, tmp_path):
        write_baselines(tmp_path)
        name = next(iter(GOLDEN_CASES))
        os.remove(tmp_path / f"{name}.json")
        failures = check_baselines(tmp_path)
        assert any("missing" in f and name in f for f in failures)

    def test_stat_drift_is_reported_by_name(self, tmp_path):
        write_baselines(tmp_path)
        name = next(iter(GOLDEN_CASES))
        path = tmp_path / f"{name}.json"
        record = json.loads(path.read_text())
        record["stats"]["total_mass"] *= 1.0 + 1e-6
        path.write_text(json.dumps(record))
        failures = check_baselines(tmp_path)
        assert any("total_mass" in f for f in failures)

    def test_digest_drift_mentions_regen_command(self, tmp_path):
        write_baselines(tmp_path)
        name = next(iter(GOLDEN_CASES))
        path = tmp_path / f"{name}.json"
        record = json.loads(path.read_text())
        record["digest"] = "0" * 64
        path.write_text(json.dumps(record))
        failures = check_baselines(tmp_path)
        assert any("--regen-golden" in f for f in failures)


class TestDigest:
    def test_digest_is_deterministic_across_reruns(self):
        name, case = next(iter(GOLDEN_CASES.items()))
        a = compute_baseline(name, case)
        b = compute_baseline(name, case)
        assert a["digest"] == b["digest"]
        assert a["stats"] == b["stats"]

    def test_digest_distinguishes_cases(self):
        baselines = [compute_baseline(n, c) for n, c in GOLDEN_CASES.items()]
        digests = {b["digest"] for b in baselines}
        assert len(digests) == len(baselines)

    def test_negative_zero_normalized(self):
        import numpy as np

        from repro.api import Simulation
        from repro.verify.golden import GOLDEN_CASES as cases

        case = cases["fluid_decay_bgk"]
        with Simulation(case.config("sequential")) as sim:
            before = state_digest(sim)
            # -0.0 and +0.0 must hash identically.
            sim.fluid.force[...] = np.where(
                sim.fluid.force == 0.0, -0.0, sim.fluid.force
            )
            assert state_digest(sim) == before
