"""The fused hot path is physics-equivalent to sequential and allocation-free.

Gates the ``variant="fused"`` solver three ways:

* the differential oracle locks it step-by-step against ``sequential``
  for both collision operators, including the hard configuration —
  moving bounce-back walls + outflow + external body force — where the
  fused boundary-capture protocol does real work;
* a seeded sweep of generated configs (the same generator the
  ``python -m repro.verify`` gate uses), so equivalence is not limited
  to hand-picked shapes;
* tracemalloc proves a steady-state fluid step allocates no numpy
  array: after warmup the traced high-water mark over several steps
  stays far below one scalar field.
"""

import tracemalloc
from dataclasses import replace

import pytest

from repro.api import Simulation
from repro.config import BoundaryConfig, SimulationConfig, StructureConfig
from repro.verify import compare_variants
from repro.verify.generate import generate_cases
from repro.verify.golden import GOLDEN_CASES, GOLDEN_VARIANTS, compute_baseline

pytestmark = pytest.mark.verify


def _fsi_config(**overrides):
    defaults = dict(
        fluid_shape=(8, 8, 8),
        tau=0.8,
        structure=StructureConfig(kind="flat_sheet", num_fibers=3, nodes_per_fiber=3),
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestOracleEquivalence:
    @pytest.mark.parametrize("operator", ["bgk", "trt"])
    def test_fsi_matches_sequential(self, operator):
        config = _fsi_config(collision_operator=operator)
        divergence = compare_variants(
            config, "sequential", "fused", num_steps=4, state_seed=7
        )
        assert divergence is None

    @pytest.mark.parametrize("operator", ["bgk", "trt"])
    def test_walls_outflow_and_body_force(self, operator):
        """The boundary-capture protocol: a moving bounce-back lid, a
        no-slip floor, an outflow face, and a constant body force."""
        config = _fsi_config(
            collision_operator=operator,
            external_force=(1e-5, 0.0, 0.0),
            boundaries=(
                BoundaryConfig(
                    "bounce_back", "z", "high", wall_velocity=(0.02, 0.0, 0.0)
                ),
                BoundaryConfig("bounce_back", "z", "low"),
                BoundaryConfig("outflow", "x", "high"),
            ),
        )
        divergence = compare_variants(
            config, "sequential", "fused", num_steps=4, state_seed=7
        )
        assert divergence is None

    def test_generated_case_sweep(self):
        for case in generate_cases(20150715, 6):
            config = replace(case.config(), num_threads=1)
            divergence = compare_variants(
                config,
                "sequential",
                "fused",
                num_steps=case.steps,
                state_seed=case.state_seed,
            )
            assert divergence is None, f"{case.describe()}: {divergence}"


class TestGoldenBaselines:
    def test_fused_variant_registered(self):
        assert GOLDEN_VARIANTS.get("_fused") == "fused"

    @pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
    def test_fused_digest_equals_sequential(self, name):
        """The fused step is not just tolerance-close — it reproduces the
        sequential golden digest exactly (bit-identical physics)."""
        case = GOLDEN_CASES[name]
        sequential = compute_baseline(name, case, "sequential")
        fused = compute_baseline(name, case, "fused")
        assert fused["digest"] == sequential["digest"]
        assert fused["stats"] == sequential["stats"]


class TestZeroAllocation:
    def test_steady_state_fluid_step_allocates_no_arrays(self):
        """After warmup, five fused fluid steps allocate no numpy array:
        the tracemalloc peak stays below a fraction of one scalar field
        (16^3 doubles = 32768 bytes; observed peak is view objects only)."""
        config = SimulationConfig(
            fluid_shape=(16, 16, 16),
            tau=0.8,
            solver="fused",
            structure=StructureConfig(kind="none"),
        )
        with Simulation(config) as sim:
            sim.run(3)  # warmup: arena buffers, shift table
            tracemalloc.start()
            tracemalloc.reset_peak()
            sim.run(5)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        assert peak < 8192, f"fused step allocated {peak} bytes at peak"

    def test_fsi_steps_retain_no_stencil_memory(self):
        """The FSI hot path allocates fresh stencil arrays every step
        (marker positions move), but must not *retain* them: the
        stencil cache drops its per-step flat arrays at end of step, so
        the memory retained across a run stays far below one step's
        stencil footprint (previously ~680 kB lingered on the Table-I
        smoke workload)."""
        config = SimulationConfig(
            fluid_shape=(8, 8, 8),
            tau=0.8,
            solver="fused",
            structure=StructureConfig(
                kind="flat_sheet", num_fibers=4, nodes_per_fiber=4
            ),
        )
        with Simulation(config) as sim:
            sim.run(3)  # warmup: arena buffers, shift table, caches
            tracemalloc.start()
            sim.run(5)
            retained, _ = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        # One sheet's flat stencils alone are 16 nodes x 64 support x
        # 8 B x (idx + weights) = 16 kB; retaining nothing means a few
        # hundred bytes of bookkeeping at most.
        assert retained < 4096, f"fused FSI run retained {retained} bytes"
