"""Seeded config generator: determinism, validity, and shrinking."""

from dataclasses import replace

import pytest

from repro.api import Simulation
from repro.verify import VerifyCase, generate_cases, shrink_case
from repro.verify.oracle import variant_config

pytestmark = pytest.mark.verify


class TestDeterminism:
    def test_same_seed_same_cases(self):
        assert generate_cases(123, 5) == generate_cases(123, 5)

    def test_different_seed_different_cases(self):
        assert generate_cases(123, 5) != generate_cases(124, 5)


class TestValidity:
    def test_generated_dims_are_cube_multiples(self):
        for case in generate_cases(7, 20):
            assert all(n % case.cube_size == 0 for n in case.dims)
            assert case.steps >= 1
            assert case.tau > 0.5

    @pytest.mark.parametrize("solver", ["sequential", "cube", "distributed"])
    def test_generated_configs_build_and_step(self, solver):
        case = generate_cases(99, 1)[0]
        config = variant_config(case.config(), solver)
        with Simulation(config) as sim:
            sim.run(1)
            assert sim.time_step == 1


class TestShrinking:
    def test_shrinks_to_minimal_when_everything_fails(self):
        """A predicate that always fails drives the case to the floor:
        one step, no structure, one thread, smallest grid, bgk, block."""
        case = VerifyCase(
            dims=(12, 8, 8),
            cube_size=4,
            operator="trt",
            num_threads=4,
            cube_method="cyclic",
            fiber_method="block_cyclic",
            structure_kind="parallel_sheets",
            external_force=(1e-5, 0.0, 0.0),
            steps=3,
        )
        minimal = shrink_case(case, lambda c: True, max_attempts=200)
        assert minimal.steps == 1
        assert minimal.structure_kind == "none"
        assert minimal.num_threads == 1
        assert minimal.operator == "bgk"
        assert minimal.external_force is None
        assert minimal.cube_method == "block"
        assert minimal.dims == tuple(2 * minimal.cube_size for _ in range(3))

    def test_preserves_failure_relevant_field(self):
        """Shrinking keeps whatever the failure depends on — here the
        trt operator — while simplifying everything else away."""
        case = VerifyCase(operator="trt", num_threads=4, steps=3)
        minimal = shrink_case(case, lambda c: c.operator == "trt")
        assert minimal.operator == "trt"
        assert minimal.num_threads == 1
        assert minimal.steps == 1

    def test_predicate_exception_means_not_reproduced(self):
        case = VerifyCase(steps=3)

        def raises_on_simplified(candidate):
            if candidate.steps == 1:
                raise RuntimeError("candidate would not even build")
            return True

        minimal = shrink_case(case, raises_on_simplified)
        assert minimal.steps > 1  # never adopted the raising candidate

    def test_fixpoint_on_unreproducible_failure(self):
        case = generate_cases(5, 1)[0]
        assert shrink_case(case, lambda c: False) == case

    def test_describe_mentions_key_fields(self):
        case = replace(VerifyCase(), tau=1.1, cube_size=4)
        text = case.describe()
        assert "tau=1.1" in text and "k=4" in text
