"""Tests of the persistent decision cache.

The cache must be impossible to be hurt by: wrong schema, wrong
machine, torn JSON, or hand-mangled entries all degrade to a miss (and
a re-tune), never to an exception or a misread decision.
"""

import json

import pytest

from repro.tuning.cache import SCHEMA_VERSION, DecisionCache, TunedDecision
from repro.tuning.space import TuningCandidate


def _decision(key="8x8x8/fib4x4/b1/float64", variant="fused"):
    return TunedDecision(
        workload_key=key,
        candidate=TuningCandidate(variant=variant, scatter="add_at"),
        predicted_seconds=2e-3,
        measured_seconds=1e-3,
        model_scale=0.5,
        probes=(
            {"label": "fused/float64/add_at", "predicted": 2e-3,
             "measured": 1e-3, "error": 1.0},
        ),
    )


class TestDecisionRoundTrip:
    def test_to_from_dict(self):
        d = _decision()
        assert TunedDecision.from_dict(d.to_dict()) == d

    def test_disk_round_trip(self, tmp_path):
        path = tmp_path / "tuned.json"
        cache = DecisionCache(path=path, fingerprint="host-a")
        cache.put(_decision())
        reloaded = DecisionCache(path=path, fingerprint="host-a")
        assert reloaded.load_error is None
        got = reloaded.get("8x8x8/fib4x4/b1/float64")
        assert got == _decision()
        assert len(reloaded) == 1

    def test_in_memory_cache_never_persists(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        cache = DecisionCache(path=None, fingerprint="host-a")
        cache.put(_decision())
        assert cache.get("8x8x8/fib4x4/b1/float64") is not None
        assert list(tmp_path.iterdir()) == []


class TestFingerprintIsolation:
    def test_other_machine_misses(self, tmp_path):
        path = tmp_path / "tuned.json"
        DecisionCache(path=path, fingerprint="host-a").put(_decision())
        other = DecisionCache(path=path, fingerprint="host-b")
        assert other.get("8x8x8/fib4x4/b1/float64") is None
        assert len(other) == 0

    def test_write_preserves_other_hosts(self, tmp_path):
        path = tmp_path / "tuned.json"
        DecisionCache(path=path, fingerprint="host-a").put(_decision())
        DecisionCache(path=path, fingerprint="host-b").put(
            _decision(variant="inplace")
        )
        back_on_a = DecisionCache(path=path, fingerprint="host-a")
        assert back_on_a.get("8x8x8/fib4x4/b1/float64").candidate.variant == "fused"


class TestSchemaVersioning:
    def test_schema_bump_discards_file(self, tmp_path):
        path = tmp_path / "tuned.json"
        DecisionCache(path=path, fingerprint="host-a").put(_decision())
        payload = json.loads(path.read_text())
        payload["schema"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        cache = DecisionCache(path=path, fingerprint="host-a")
        assert cache.get("8x8x8/fib4x4/b1/float64") is None
        assert cache.load_error is not None
        assert str(SCHEMA_VERSION) in cache.load_error

    def test_missing_schema_discards_file(self, tmp_path):
        path = tmp_path / "tuned.json"
        path.write_text(json.dumps({"machines": {}}))
        cache = DecisionCache(path=path, fingerprint="host-a")
        assert cache.load_error is not None


class TestCorruptionTolerance:
    @pytest.mark.parametrize(
        "content",
        [
            "",  # truncated to nothing
            '{"schema": 1, "machines": {',  # torn mid-write
            "not json at all",
            "[1, 2, 3]",  # valid JSON, wrong root type
            '{"schema": 1}',  # no machine table
        ],
    )
    def test_mangled_file_loads_empty(self, tmp_path, content):
        path = tmp_path / "tuned.json"
        path.write_text(content)
        cache = DecisionCache(path=path, fingerprint="host-a")
        assert cache.load_error is not None
        assert len(cache) == 0
        # ... and the next put rewrites it cleanly.
        cache.put(_decision())
        healed = DecisionCache(path=path, fingerprint="host-a")
        assert healed.load_error is None
        assert healed.get("8x8x8/fib4x4/b1/float64") is not None

    def test_mangled_entry_is_a_miss_not_an_error(self, tmp_path):
        path = tmp_path / "tuned.json"
        cache = DecisionCache(path=path, fingerprint="host-a")
        cache.put(_decision())
        payload = json.loads(path.read_text())
        entry = payload["machines"]["host-a"]["8x8x8/fib4x4/b1/float64"]
        del entry["candidate"]
        path.write_text(json.dumps(payload))
        reloaded = DecisionCache(path=path, fingerprint="host-a")
        assert reloaded.get("8x8x8/fib4x4/b1/float64") is None

    def test_unreadable_path_is_tolerated(self, tmp_path):
        cache = DecisionCache(path=tmp_path, fingerprint="host-a")  # a dir
        assert cache.load_error is not None
        assert len(cache) == 0


class TestInvalidate:
    def test_single_key(self, tmp_path):
        path = tmp_path / "tuned.json"
        cache = DecisionCache(path=path, fingerprint="host-a")
        cache.put(_decision())
        cache.put(_decision(key="other/fib0x0/b1/float64", variant="inplace"))
        cache.invalidate("8x8x8/fib4x4/b1/float64")
        assert cache.get("8x8x8/fib4x4/b1/float64") is None
        assert cache.get("other/fib0x0/b1/float64") is not None

    def test_all_keys(self, tmp_path):
        path = tmp_path / "tuned.json"
        cache = DecisionCache(path=path, fingerprint="host-a")
        cache.put(_decision())
        cache.invalidate()
        assert len(cache) == 0
        assert len(DecisionCache(path=path, fingerprint="host-a")) == 0
