"""Tests of the ``python -m repro.tuning`` command line."""

import json

import pytest

from repro.tuning.__main__ import main


ARGS = [
    "--shape", "8x8x8",
    "--fibers", "4",
    "--steps", "1",
    "--repeats", "1",
    "--top-n", "2",
]


class TestCli:
    def test_prints_ranking_and_decision(self, capsys):
        assert main(ARGS) == 0
        out = capsys.readouterr().out
        assert "workload  : 8x8x8/fib4x4/b1/float64" in out
        assert "machine   :" in out
        assert "decision  :" in out
        assert "model_scale" in out
        # The ranking table shows predictions for the whole space and
        # measurements for the probed top-N.
        assert "pred ms" in out and "meas ms" in out

    def test_variant_set_restricts_the_table(self, capsys):
        assert main(ARGS + ["--variant-set", "fused"]) == 0
        out = capsys.readouterr().out
        assert "fused/" in out
        assert "inplace/" not in out

    def test_cache_round_trip(self, tmp_path, capsys):
        cache = tmp_path / "tuned.json"
        assert main(ARGS + ["--cache", str(cache)]) == 0
        first = capsys.readouterr().out
        assert "tuned and stored" in first
        payload = json.loads(cache.read_text())
        assert payload["schema"] == 1
        # Second run hits the cache: no probes, the decision replays.
        assert main(ARGS + ["--cache", str(cache)]) == 0
        second = capsys.readouterr().out
        assert "(cached)" in second

    def test_fluid_only_workload(self, capsys):
        assert main(ARGS + ["--fibers", "0"]) == 0
        assert "fib0x0" in capsys.readouterr().out

    def test_bad_shape_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["--shape", "8x8"])

    def test_bad_variant_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            main(ARGS + ["--variant-set", "openmp"])
