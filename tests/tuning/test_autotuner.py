"""Tests of the full predict -> probe -> cache autotuner loop."""

import math

import pytest

from repro.config import SimulationConfig, StructureConfig
from repro.errors import ConfigurationError
from repro.tuning.autotuner import Autotuner
from repro.tuning.cache import DecisionCache
from repro.tuning.space import ORACLE_SAFE_VARIANTS
from repro.verify.oracle import DifferentialOracle


CFG = SimulationConfig(
    fluid_shape=(8, 8, 8),
    structure=StructureConfig(kind="flat_sheet", num_fibers=4, nodes_per_fiber=4),
)


def _tuner(**kwargs):
    kwargs.setdefault("cache", DecisionCache(path=None, fingerprint="test-host"))
    kwargs.setdefault("probe_steps", 1)
    kwargs.setdefault("probe_warmup", 0)
    kwargs.setdefault("probe_repeats", 1)
    return Autotuner(**kwargs)


class TestTuneLoop:
    def test_probes_and_decides(self):
        report = _tuner().tune(CFG)
        assert not report.from_cache
        assert report.predictions and report.probes
        d = report.decision
        assert d.candidate.variant in ORACLE_SAFE_VARIANTS
        assert d.measured_seconds > 0
        assert d.probes
        for probe in d.probes:
            assert math.isfinite(probe["error"])
        # The winner is the measured minimum among the probed set.
        assert d.measured_seconds == min(r.seconds for r in report.probes)

    def test_decision_is_cached_and_reused(self):
        tuner = _tuner()
        first = tuner.tune(CFG)
        second = tuner.tune(CFG)
        assert not first.from_cache
        assert second.from_cache
        assert second.decision == first.decision
        assert not second.probes  # nothing ran

    def test_force_reprobes_and_keeps_recalibration(self):
        tuner = _tuner()
        first = tuner.tune(CFG)
        again = tuner.tune(CFG, force=True)
        assert not again.from_cache
        assert again.probes
        # The second round starts from the first round's model_scale —
        # its stored scale is first.model_scale times a fresh median
        # ratio, so repeated tuning converges instead of oscillating.
        assert again.decision.model_scale > 0

    def test_model_scale_recalibrates_toward_measurement(self):
        report = _tuner().tune(CFG)
        d = report.decision
        # predicted ~100ms-scale (paper-calibrated C), measured ~ms-scale
        # (NumPy on a tiny grid): the stored scale must shrink the model
        # toward reality.
        assert 0 < d.model_scale < 1

    def test_variant_restriction_respected(self):
        report = _tuner().tune(CFG, variants=("fused",))
        assert report.decision.candidate.variant == "fused"

    def test_precision_contract_respected(self):
        from dataclasses import replace

        report = _tuner().tune(replace(CFG, precision="float64"))
        assert report.decision.candidate.precision == "float64"

    def test_tuned_config_is_runnable(self):
        config = _tuner().tuned_config(CFG)
        assert config.solver in ORACLE_SAFE_VARIANTS
        assert config.fluid_shape == CFG.fluid_shape

    def test_invalid_top_n_rejected(self):
        with pytest.raises(ConfigurationError):
            Autotuner(probe_top_n=0)


class TestBitIdentitySafety:
    def test_tuned_decision_passes_the_differential_oracle(self):
        """Acceptance: a tuned decision never changes the answer.

        The tuned solo config must stay within the oracle tolerance of
        the sequential reference — at the float64 contract that bound
        is tighter than any physical signal.
        """
        report = _tuner().tune(CFG)
        tuned = report.best_config(CFG)
        variant = tuned.solver
        if variant == "batched":
            # The solo oracle drives solver variants; the batched slot
            # equivalence is pinned by the scheduler suite.
            variant = "fused"
        oracle = DifferentialOracle(
            CFG, variant_a="sequential", variant_b=variant, state_seed=0
        )
        assert oracle.run(4) is None
