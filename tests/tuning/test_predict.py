"""Tests of the model-guided prediction stage."""

from repro.machine.spec import abu_dhabi, thog
from repro.tuning.predict import predict_ranking, predict_step_seconds
from repro.tuning.space import TuningCandidate, TuningWorkload


WORKLOAD = TuningWorkload(
    fluid_shape=(62, 32, 32), fiber_shape=(26, 26), precision="float64"
)


class TestPredictStepSeconds:
    def test_positive_and_finite(self):
        for variant in ("sequential", "fused", "inplace"):
            p = predict_step_seconds(WORKLOAD, TuningCandidate(variant=variant))
            assert p.seconds > 0

    def test_inplace_beats_sequential(self):
        # The AA-pattern layout moves fewer bytes per step (no stream,
        # no copy) — the model must reflect that on a memory-bound grid.
        seq = predict_step_seconds(WORKLOAD, TuningCandidate(variant="sequential"))
        inp = predict_step_seconds(WORKLOAD, TuningCandidate(variant="inplace"))
        assert inp.seconds < seq.seconds

    def test_model_scale_is_linear_on_the_base_term(self):
        cand = TuningCandidate(variant="fused")
        one = predict_step_seconds(WORKLOAD, cand, model_scale=1.0)
        half = predict_step_seconds(WORKLOAD, cand, model_scale=0.5)
        assert abs(half.seconds - one.seconds * 0.5) < 1e-12

    def test_breakdown_reconstructs_total(self):
        p = predict_step_seconds(
            WORKLOAD, TuningCandidate(variant="fused", scatter="bincount")
        )
        b = p.breakdown
        kernel = b["base"] * b["memory_factor"] * b["compute_factor"]
        total = (kernel + b["dispatch"] + b["scatter"]) * b["model_scale"]
        assert abs(total - p.seconds) < 1e-15

    def test_auto_scatter_is_min_of_both(self):
        auto = predict_step_seconds(WORKLOAD, TuningCandidate(variant="fused"))
        forced = [
            predict_step_seconds(
                WORKLOAD, TuningCandidate(variant="fused", scatter=s)
            )
            for s in ("add_at", "bincount")
        ]
        assert auto.seconds <= min(f.seconds for f in forced) + 1e-15

    def test_machine_matters(self):
        cand = TuningCandidate(variant="sequential")
        a = predict_step_seconds(WORKLOAD, cand, machine=abu_dhabi())
        b = predict_step_seconds(WORKLOAD, cand, machine=thog())
        assert a.seconds != b.seconds


class TestPredictRanking:
    def test_sorted_and_deterministic(self):
        cands = [
            TuningCandidate(variant=v, scatter=s)
            for v in ("sequential", "fused", "inplace")
            for s in ("add_at", "bincount")
        ]
        first = predict_ranking(WORKLOAD, cands)
        second = predict_ranking(WORKLOAD, list(reversed(cands)))
        assert [p.candidate for p in first] == [p.candidate for p in second]
        seconds = [p.seconds for p in first]
        assert seconds == sorted(seconds)

    def test_to_dict_is_json_safe(self):
        import json

        p = predict_ranking(WORKLOAD, [TuningCandidate(variant="fused")])[0]
        json.dumps(p.to_dict())
