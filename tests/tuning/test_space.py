"""Tests of the tuning search space (workload keys, candidates, axes)."""

import pytest

from repro.config import SimulationConfig, StructureConfig
from repro.errors import ConfigurationError
from repro.tuning.space import (
    ORACLE_SAFE_VARIANTS,
    TuningCandidate,
    TuningWorkload,
    allowed_precisions,
    candidate_space,
)


def _config(shape=(8, 8, 8), fibers=4, precision="float64"):
    structure = (
        StructureConfig(kind="none")
        if fibers == 0
        else StructureConfig(
            kind="flat_sheet", num_fibers=fibers, nodes_per_fiber=fibers
        )
    )
    return SimulationConfig(
        fluid_shape=shape, structure=structure, precision=precision
    )


class TestWorkload:
    def test_key_encodes_every_axis(self):
        w = TuningWorkload.from_config(_config(), batch_size=4)
        assert w.key() == "8x8x8/fib4x4/b4/float64"

    def test_from_config_without_structure(self):
        w = TuningWorkload.from_config(_config(fibers=0))
        assert w.fiber_shape == (0, 0)
        assert w.fiber_nodes == 0

    def test_distinct_workloads_distinct_keys(self):
        a = TuningWorkload.from_config(_config(), batch_size=1)
        b = TuningWorkload.from_config(_config(), batch_size=2)
        c = TuningWorkload.from_config(_config(precision="float32"))
        assert len({a.key(), b.key(), c.key()}) == 3


class TestCandidate:
    def test_rejects_non_oracle_safe_variant(self):
        with pytest.raises(ConfigurationError):
            TuningCandidate(variant="openmp")

    def test_to_config_pins_variant_and_precision(self):
        base = _config()
        cand = TuningCandidate(variant="inplace", precision="float32")
        config = cand.to_config(base)
        assert config.solver == "inplace"
        assert config.precision == "float32"
        # The physics is untouched.
        assert config.fluid_shape == base.fluid_shape
        assert config.structure == base.structure

    def test_dict_round_trip(self):
        cand = TuningCandidate(
            variant="batched", precision="mixed", scatter="add_at", batch_width=4
        )
        assert TuningCandidate.from_dict(cand.to_dict()) == cand


class TestAllowedPrecisions:
    def test_float64_contract_admits_only_float64(self):
        assert allowed_precisions("float64") == ("float64",)

    def test_float32_contract_admits_mixed(self):
        assert set(allowed_precisions("float32")) == {"float32", "mixed"}

    def test_unknown_contract_rejected(self):
        with pytest.raises(ConfigurationError):
            allowed_precisions("float16")


class TestCandidateSpace:
    def test_every_candidate_is_oracle_safe(self):
        w = TuningWorkload.from_config(_config(), batch_size=2)
        for cand in candidate_space(w):
            assert cand.variant in ORACLE_SAFE_VARIANTS

    def test_scatter_axis_collapses_without_fibers(self):
        w = TuningWorkload.from_config(_config(fibers=0))
        assert {c.scatter for c in candidate_space(w)} == {"auto"}

    def test_scatter_axis_expands_with_fibers(self):
        w = TuningWorkload.from_config(_config(fibers=4))
        assert {c.scatter for c in candidate_space(w)} == {"add_at", "bincount"}

    def test_precision_contract_gates_the_axis(self):
        w64 = TuningWorkload.from_config(_config(precision="float64"))
        assert {c.precision for c in candidate_space(w64)} == {"float64"}
        w32 = TuningWorkload.from_config(_config(precision="float32"))
        assert {c.precision for c in candidate_space(w32)} == {
            "float32",
            "mixed",
        }

    def test_batched_width_follows_workload(self):
        w = TuningWorkload.from_config(_config(), batch_size=4)
        widths = {
            c.batch_width for c in candidate_space(w) if c.variant == "batched"
        }
        assert widths == {4}

    def test_table1_grid_gets_no_cube_candidates(self):
        # gcd(62, 32, 32) == 2 < the minimum feasible edge, so the cube
        # variant must not enter the space (its per-cube Python dispatch
        # would dominate any probe).
        w = TuningWorkload.from_config(_config(shape=(62, 32, 32), fibers=26))
        assert not any(c.variant == "cube" for c in candidate_space(w))

    def test_cubic_grid_gets_bounded_cube_edges(self):
        w = TuningWorkload.from_config(_config(shape=(16, 16, 16)))
        edges = {
            c.cube_size for c in candidate_space(w) if c.variant == "cube"
        }
        assert edges  # 4, 8, 16 all divide 16
        assert all(e >= 4 for e in edges)

    def test_variant_restriction(self):
        w = TuningWorkload.from_config(_config())
        cands = candidate_space(w, variants=("fused",))
        assert {c.variant for c in cands} == {"fused"}

    def test_unknown_variant_restriction_rejected(self):
        w = TuningWorkload.from_config(_config())
        with pytest.raises(ConfigurationError):
            candidate_space(w, variants=("openmp",))
