"""Tests of online re-tuning in the batch scheduler.

The acceptance scenario: a seeded scheduler run with injected step-time
drift triggers exactly one online re-tune (journaled as
``retune_triggered`` / ``retune_applied``), the re-tuned knobs are
bit-identity-safe, and every in-flight job finishes bit-identical to
its solo run.
"""

from dataclasses import replace

import pytest

from repro.api import Simulation
from repro.batch import BatchScheduler
from repro.config import SimulationConfig
from repro.core.ib import spreading
from repro.errors import ConfigurationError
from repro.tuning.online import OnlineRetuner, RetuneEvent
from repro.verify.golden import fields_digest
from repro.verify.oracle import seeded_initial_fluid

CFG = SimulationConfig(fluid_shape=(8, 8, 8), solver="batched")


@pytest.fixture(autouse=True)
def _restore_scatter():
    """Re-tunes force the scatter method through a module global."""
    yield
    spreading.set_scatter_method("auto")


def _submit_seeded(scheduler, job_id, seed, steps):
    scheduler.submit(
        CFG, steps, job_id=job_id, initial_fluid=seeded_initial_fluid(CFG, seed)
    )


def _solo_digest(seed, steps):
    sim = Simulation(CFG, initial_fluid=seeded_initial_fluid(CFG, seed))
    sim.run(steps)
    return fields_digest(sim.fluid, sim.structure)


class _Tick:
    """Minimal stand-in for SchedulerTick in unit tests."""

    def __init__(self, batch_step, step_seconds):
        self.batch_step = batch_step
        self.step_seconds = step_seconds


class TestUnitBehaviour:
    def test_exactly_one_event_per_drift_episode(self):
        retuner = OnlineRetuner(
            expected_step_seconds=1.0,
            drift_threshold=1.5,
            window=4,
            patience=2,
            cooldown=100,
            retune=lambda: {},
        )
        for i in range(8):
            retuner.observe(_Tick(i, 1.0))
        for i in range(8, 40):
            retuner.observe(_Tick(i, 8.0))
        assert len(retuner.events) == 1
        event = retuner.events[0]
        assert isinstance(event, RetuneEvent)
        assert event.ratio > 1.5

    def test_no_event_without_drift(self):
        retuner = OnlineRetuner(
            expected_step_seconds=1.0, window=4, patience=2, retune=lambda: {}
        )
        for i in range(40):
            retuner.observe(_Tick(i, 1.0))
        assert retuner.events == []

    def test_bad_knob_is_journaled_not_raised(self):
        scheduler = BatchScheduler(max_batch=2)
        retuner = OnlineRetuner(
            scheduler=scheduler,
            expected_step_seconds=1.0,
            window=1,
            patience=1,
            retune=lambda: {"scatter_method": "not-a-method"},
        )
        retuner.observe(_Tick(0, 8.0))
        assert retuner.events == []
        kinds = [e.kind for e in scheduler.incidents.events]
        assert "retune_triggered" in kinds
        assert "retune_failed" in kinds
        assert "retune_applied" not in kinds


class TestSchedulerIntegration:
    def test_injected_drift_retunes_once_and_stays_bit_identical(self):
        scheduler = BatchScheduler(max_batch=3)
        retuner = OnlineRetuner(
            scheduler=scheduler,
            expected_step_seconds=1.0,
            drift_threshold=1.5,
            window=4,
            patience=2,
            cooldown=1000,
            retune=lambda: {"scatter_method": "bincount", "max_batch": 2},
        )

        def hook(tick):
            # Inject a synthetic step-time series: nominal for the first
            # 8 sweeps, then a sustained 8x drift.  The scheduler's real
            # wall times are irrelevant to the detector under test.
            synthetic = 1.0 if tick.batch_step < 8 else 8.0
            retuner.observe(replace(tick, step_seconds=synthetic))

        scheduler.step_hook = hook
        steps = 30
        for i, job_id in enumerate(("a", "b", "c")):
            _submit_seeded(scheduler, job_id, seed=i, steps=steps)
        results = scheduler.run()

        # Exactly one re-tune, journaled.
        assert len(retuner.events) == 1
        assert retuner.events[0].applied == {
            "max_batch": 2,
            "scatter_method": "bincount",
        }
        kinds = [e.kind for e in scheduler.incidents.events]
        assert kinds.count("retune_triggered") == 1
        assert kinds.count("retune_applied") == 1
        assert kinds.count("tuning_applied") == 1
        # The knobs actually landed.
        assert scheduler.max_batch == 2
        assert spreading._scatter_override == "bincount"

        # In-flight jobs stayed bit-identical to their solo runs even
        # though the scatter implementation switched mid-flight.
        for i, job_id in enumerate(("a", "b", "c")):
            assert results[job_id].ok
            assert fields_digest(
                results[job_id].fluid, results[job_id].structure
            ) == _solo_digest(i, steps)

    def test_rebinding_after_scheduler_rebuild(self):
        first = BatchScheduler(max_batch=2)
        retuner = OnlineRetuner(
            scheduler=first,
            expected_step_seconds=1.0,
            window=1,
            patience=1,
            cooldown=1000,
            retune=lambda: {"max_batch": 1},
        )
        second = BatchScheduler(max_batch=2)
        retuner.bind(second)
        retuner.observe(_Tick(0, 8.0))
        assert second.max_batch == 1
        assert first.max_batch == 2


class TestApplyTuning:
    def test_invalid_values_apply_nothing(self):
        scheduler = BatchScheduler(max_batch=4)
        with pytest.raises(ConfigurationError):
            scheduler.apply_tuning(max_batch=0, scatter_method="bincount")
        assert scheduler.max_batch == 4
        assert spreading._scatter_override == "auto"

    def test_applied_knobs_are_journaled(self):
        scheduler = BatchScheduler(max_batch=4)
        applied = scheduler.apply_tuning(max_batch=2)
        assert applied == {"max_batch": 2}
        assert any(
            e.kind == "tuning_applied" for e in scheduler.incidents.events
        )
