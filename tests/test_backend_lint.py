"""Grep-based lint: field allocations must route through the backend.

Every persistent float field and every hot-path scratch buffer in the
vectorized solver core is supposed to come from
:mod:`repro.core.backend` (directly or via ``FluidGrid``/``ScratchArena``)
so that the precision policy, memory layout and an injected array
module apply everywhere at once.  A direct ``np.empty(...)`` with a
hardcoded float dtype — or with no dtype at all, which silently means
float64 — bypasses all three.

This test walks ``src/repro/core`` and ``src/repro/batch`` and fails on
any such call outside the sanctioned modules.  Escape hatches, in
order of preference:

* pass a *derived* dtype (``dtype=out.dtype``, ``np.result_type(...)``,
  a ``face_dtype`` variable) — the lint only matches hardcoded floats
  and missing dtypes;
* integer/bool buffers are always fine (``dtype=np.int64`` etc.);
* a deliberate float64 allocation gets an inline
  ``# backend-lint: ok (<reason>)`` marker on the same line;
* whole modules that are float64 *by design* are allowlisted below.

``src/repro/parallel`` and ``src/repro/distributed`` are out of scope:
the cube/halo layouts keep float64 working copies of the fluid state by
design (they model the paper's double-precision C kernels) and exchange
with the policy-typed ``FluidGrid`` through explicit casts.
"""

import re
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Directories whose allocations must go through the backend.
SCOPES = ("core", "batch")

#: Modules exempt from the lint, relative to ``src/repro``.
ALLOWED = {
    # the allocation facade itself and the two field containers built on it
    "core/backend.py",
    "core/lbm/fields.py",
    "batch/fields.py",
    # scalar float64 reference implementation: the point of the module
    # is to be dtype-naive and slow
    "core/reference.py",
    # Lagrangian structure state is permanently float64 under every
    # policy (positions/forces of a few thousand fiber nodes)
    "core/ib/geometry.py",
    "core/ib/fiber.py",
    "core/ib/delta.py",
}

#: An allocation call: np.empty/zeros/ones/full with one level of
#: nested parens in the arguments (shape tuples like ``(Q,) + spatial``).
_ALLOC = re.compile(
    r"np\.(?:empty|zeros|ones|full)\((?:[^()]|\([^()]*\))*\)"
)

#: Hardcoded double-precision dtypes (``float`` is builtin float64).
_HARDCODED_FLOAT = re.compile(
    r"dtype\s*=\s*(?:DTYPE\b|np\.float64\b|np\.double\b|float\b|[\"']float64[\"'])"
)

_MARKER = "# backend-lint: ok"


def _violations():
    found = []
    for scope in SCOPES:
        for path in sorted((SRC / scope).rglob("*.py")):
            rel = path.relative_to(SRC).as_posix()
            if rel in ALLOWED:
                continue
            text = path.read_text(encoding="utf-8")
            lines = text.splitlines()
            for match in _ALLOC.finditer(text):
                call = match.group(0)
                if "dtype" in call and not _HARDCODED_FLOAT.search(call):
                    continue  # derived dtype or int/bool buffer
                lineno = text.count("\n", 0, match.start()) + 1
                line = lines[lineno - 1]
                if _MARKER in line:
                    continue
                found.append(f"{rel}:{lineno}: {call.strip()}")
    return found


def test_no_direct_float_field_allocations():
    violations = _violations()
    assert not violations, (
        "direct float/dtype-less allocations outside the array backend "
        "(route through repro.core.backend, derive the dtype from an "
        "operand, or add '# backend-lint: ok (<reason>)'):\n  "
        + "\n  ".join(violations)
    )


def test_lint_catches_hardcoded_and_missing_dtypes():
    """Self-test: the patterns match what they claim to match."""
    flagged = [
        "out = np.empty((19,) + shape, dtype=DTYPE)",
        "out = np.zeros(shape, dtype=np.float64)",
        "out = np.ones(shape, dtype=float)",
        'out = np.full(shape, 1.0, dtype="float64")',
        "out = np.zeros((nx, ny, nz))",  # missing dtype == float64
    ]
    passed = [
        "out = np.empty(shape, dtype=out.dtype)",
        "out = np.empty(shape, dtype=np.result_type(a, b))",
        "out = np.zeros(n, dtype=np.int64)",
        "mask = np.zeros(shape, dtype=bool)",
        "buf = np.empty(face_shape, dtype=face_dtype)",
    ]
    for snippet in flagged:
        match = _ALLOC.search(snippet)
        assert match, snippet
        call = match.group(0)
        assert "dtype" not in call or _HARDCODED_FLOAT.search(call), snippet
    for snippet in passed:
        match = _ALLOC.search(snippet)
        assert match, snippet
        call = match.group(0)
        assert "dtype" in call and not _HARDCODED_FLOAT.search(call), snippet


def test_allowlist_entries_exist():
    """Stale allowlist entries hide new violations — prune them."""
    for rel in ALLOWED:
        assert (SRC / rel).is_file(), f"allowlisted module vanished: {rel}"
