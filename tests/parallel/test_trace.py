"""Tests of the execution-trace recorder."""

import threading

import numpy as np
import pytest

from repro.parallel.executor import run_spmd
from repro.parallel.trace import ExecutionTrace, KernelEvent


class TestRecording:
    def test_events_accumulate(self):
        t = ExecutionTrace(2)
        t.record(0, "collision", 0, 0.5, 100)
        t.record(0, "collision", 1, 0.25, 50)
        assert len(t.events) == 2
        assert t.events[0] == KernelEvent(0, "collision", 0, 0.5, 100)

    def test_concurrent_recording_is_safe(self):
        t = ExecutionTrace(4)

        def worker(tid):
            for step in range(50):
                t.record(step, "k", tid, 0.001, 1)

        run_spmd(4, worker)
        assert len(t.events) == 200

    def test_events_snapshot_is_a_copy(self):
        t = ExecutionTrace(1)
        t.record(0, "k", 0, 1.0, 1)
        snapshot = t.events
        t.record(1, "k", 0, 1.0, 1)
        assert len(snapshot) == 1

    def test_clear(self):
        t = ExecutionTrace(1)
        t.record(0, "k", 0, 1.0, 1)
        t.clear()
        assert t.events == []


class TestAggregation:
    def _trace(self):
        t = ExecutionTrace(3)
        t.record(0, "a", 0, 1.0, 10)
        t.record(0, "a", 1, 2.0, 20)
        t.record(0, "b", 0, 0.5, 5)
        t.record(1, "a", 2, 1.5, 15)
        return t

    def test_seconds_by_kernel(self):
        s = self._trace().seconds_by_kernel()
        assert s["a"] == pytest.approx(4.5)
        assert s["b"] == pytest.approx(0.5)

    def test_seconds_by_thread(self):
        s = self._trace().seconds_by_thread()
        np.testing.assert_allclose(s, [1.5, 2.0, 1.5])

    def test_work_by_thread_filtered(self):
        t = self._trace()
        np.testing.assert_array_equal(t.work_by_thread(), [15, 20, 15])
        np.testing.assert_array_equal(t.work_by_thread("a"), [10, 20, 15])

    def test_load_imbalance(self):
        t = self._trace()
        # work: [15, 20, 15]; (20 - 50/3) / 20
        assert t.load_imbalance() == pytest.approx((20 - 50 / 3) / 20)

    def test_load_imbalance_empty(self):
        assert ExecutionTrace(4).load_imbalance() == 0.0
