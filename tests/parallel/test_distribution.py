"""Tests of cube2thread / fiber2thread distribution functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.parallel.distribution import (
    CubeDistribution,
    FiberDistribution,
    block_cyclic_map_1d,
    block_map_1d,
    cyclic_map_1d,
)
from repro.parallel.thread_mesh import ThreadMesh


class TestMap1D:
    @given(extent=st.integers(1, 100), parts=st.integers(1, 16))
    @settings(max_examples=80, deadline=None)
    def test_block_covers_all_parts_evenly(self, extent, parts):
        parts = min(parts, extent)
        owners = block_map_1d(np.arange(extent), extent, parts)
        counts = np.bincount(owners, minlength=parts)
        assert counts.sum() == extent
        assert counts.max() - counts.min() <= 1
        # block = contiguous: owners are non-decreasing
        assert (np.diff(owners) >= 0).all()

    @given(extent=st.integers(1, 100), parts=st.integers(1, 16))
    @settings(max_examples=50, deadline=None)
    def test_cyclic_round_robin(self, extent, parts):
        owners = cyclic_map_1d(np.arange(extent), extent, parts)
        np.testing.assert_array_equal(owners, np.arange(extent) % parts)

    @given(
        extent=st.integers(1, 100),
        parts=st.integers(1, 8),
        block=st.integers(1, 5),
    )
    @settings(max_examples=50, deadline=None)
    def test_block_cyclic_blocks(self, extent, parts, block):
        owners = block_cyclic_map_1d(np.arange(extent), extent, parts, block=block)
        expected = (np.arange(extent) // block) % parts
        np.testing.assert_array_equal(owners, expected)

    def test_scalar_input(self):
        assert int(block_map_1d(0, 10, 2)) == 0
        assert int(block_map_1d(9, 10, 2)) == 1

    def test_rejects_bad_args(self):
        with pytest.raises(PartitionError):
            block_map_1d(0, 0, 2)
        with pytest.raises(PartitionError):
            cyclic_map_1d(0, 5, 0)


class TestCubeDistribution:
    def _dist(self, counts=(4, 4, 4), threads=8, method="block"):
        return CubeDistribution(counts, ThreadMesh.for_threads(threads), method=method)

    def test_paper_figure6_mapping(self):
        """2x2x2 cubes onto 2x2x2 threads: each thread owns one cube."""
        dist = self._dist(counts=(2, 2, 2), threads=8)
        table = dist.owner_table()
        assert sorted(table.ravel().tolist()) == list(range(8))

    @pytest.mark.parametrize("method", ["block", "cyclic", "block_cyclic"])
    def test_every_cube_has_one_owner(self, method):
        dist = self._dist(method=method)
        table = dist.owner_table()
        assert table.shape == (4, 4, 4)
        assert table.min() >= 0 and table.max() < 8

    @pytest.mark.parametrize("method", ["block", "cyclic", "block_cyclic"])
    def test_load_is_balanced(self, method):
        dist = self._dist(method=method)
        load = dist.load_per_thread()
        assert load.sum() == 64
        assert load.max() - load.min() <= 1 or method == "block_cyclic"

    def test_cubes_of_partitions(self):
        dist = self._dist()
        all_cubes = set()
        for tid in range(8):
            for coord in map(tuple, dist.cubes_of(tid)):
                assert coord not in all_cubes
                all_cubes.add(coord)
        assert len(all_cubes) == 64

    def test_block_distribution_is_spatially_contiguous(self):
        dist = self._dist(method="block")
        coords = dist.cubes_of(0)
        # thread 0's block occupies the low corner
        assert coords.max() <= 1

    def test_vectorized_matches_scalar(self):
        dist = self._dist(method="cyclic")
        cx, cy, cz = np.meshgrid(*[np.arange(4)] * 3, indexing="ij")
        table = dist.cube2thread(cx, cy, cz)
        for c in [(0, 0, 0), (3, 2, 1), (1, 1, 3)]:
            assert table[c] == int(dist.cube2thread(*c))

    def test_rejects_more_parts_than_cubes(self):
        with pytest.raises(PartitionError, match="more parts"):
            CubeDistribution((2, 2, 2), ThreadMesh((4, 2, 1)))

    def test_rejects_unknown_method(self):
        with pytest.raises(PartitionError, match="unknown distribution"):
            CubeDistribution((4, 4, 4), ThreadMesh.for_threads(8), method="magic")


class TestFiberDistribution:
    @pytest.mark.parametrize("method", ["block", "cyclic", "block_cyclic"])
    def test_every_fiber_has_one_owner(self, method):
        """One fiber is only assigned to one thread (paper Section V-B)."""
        dist = FiberDistribution(52, 8, method=method)
        owners = dist.fiber2thread(np.arange(52))
        assert owners.min() >= 0 and owners.max() < 8
        total = sum(len(dist.fibers_of(t)) for t in range(8))
        assert total == 52

    def test_more_threads_than_fibers(self):
        dist = FiberDistribution(3, 8)
        owners = dist.fiber2thread(np.arange(3))
        assert len(set(owners.tolist())) == 3
        assert dist.load_per_thread().sum() == 3

    @given(
        num_fibers=st.integers(1, 60),
        threads=st.integers(1, 12),
        method=st.sampled_from(["block", "cyclic", "block_cyclic"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_partition_property(self, num_fibers, threads, method):
        dist = FiberDistribution(num_fibers, threads, method=method)
        owners = dist.fiber2thread(np.arange(num_fibers))
        counts = np.bincount(owners, minlength=threads)
        assert counts.sum() == num_fibers
        np.testing.assert_array_equal(counts, dist.load_per_thread())

    def test_rejects_bad_counts(self):
        with pytest.raises(PartitionError):
            FiberDistribution(0, 4)
        with pytest.raises(PartitionError):
            FiberDistribution(4, 0)
