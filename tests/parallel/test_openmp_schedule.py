"""Tests of the OpenMP solver's scheduling policies.

The paper: "We have also tried the dynamic scheduling policy but
obtained the same performance" — both schedules must be available and
numerically identical.
"""

import numpy as np
import pytest

from repro.core.ib import geometry
from repro.core.lbm.fields import FluidGrid
from repro.core.solver import SequentialLBMIBSolver
from repro.errors import ConfigurationError
from repro.parallel import OpenMPLBMIBSolver

SHAPE = (13, 8, 8)  # deliberately not divisible by the thread counts
STEPS = 5


def _make_state():
    grid = FluidGrid(SHAPE, tau=0.8)
    structure = geometry.flat_sheet(
        SHAPE, num_fibers=4, nodes_per_fiber=4, stretch_coefficient=0.04
    )
    structure.sheets[0].positions[1, 1, 0] += 0.5
    return grid, structure


@pytest.fixture(scope="module")
def sequential_result():
    grid, structure = _make_state()
    SequentialLBMIBSolver(grid, structure).run(STEPS)
    return grid, structure


class TestDynamicSchedule:
    @pytest.mark.parametrize("threads,chunk", [(2, 1), (3, 2), (4, 3)])
    def test_matches_sequential(self, sequential_result, threads, chunk):
        ref_grid, ref_structure = sequential_result
        grid, structure = _make_state()
        with OpenMPLBMIBSolver(
            grid, structure, num_threads=threads, schedule="dynamic", chunk=chunk
        ) as solver:
            solver.run(STEPS)
        assert ref_grid.state_allclose(grid, rtol=1e-10, atol=1e-12)
        assert ref_structure.state_allclose(structure, rtol=1e-10, atol=1e-12)

    def test_static_and_dynamic_identical(self):
        grid_s, struct_s = _make_state()
        grid_d, struct_d = _make_state()
        with OpenMPLBMIBSolver(grid_s, struct_s, num_threads=3) as a:
            a.run(STEPS)
        with OpenMPLBMIBSolver(
            grid_d, struct_d, num_threads=3, schedule="dynamic"
        ) as b:
            b.run(STEPS)
        assert grid_s.state_allclose(grid_d, rtol=1e-10, atol=1e-12)

    def test_chunk_larger_than_grid(self, sequential_result):
        ref_grid, _ = sequential_result
        grid, structure = _make_state()
        with OpenMPLBMIBSolver(
            grid, structure, num_threads=2, schedule="dynamic", chunk=100
        ) as solver:
            solver.run(STEPS)
        assert ref_grid.state_allclose(grid, rtol=1e-10, atol=1e-12)

    def test_rejects_bad_schedule(self):
        grid, structure = _make_state()
        with pytest.raises(ConfigurationError, match="schedule"):
            OpenMPLBMIBSolver(grid, structure, num_threads=2, schedule="guided")

    def test_rejects_bad_chunk(self):
        grid, structure = _make_state()
        with pytest.raises(ConfigurationError, match="chunk"):
            OpenMPLBMIBSolver(
                grid, structure, num_threads=2, schedule="dynamic", chunk=0
            )

    def test_dynamic_work_recorded_in_trace(self):
        grid, structure = _make_state()
        with OpenMPLBMIBSolver(
            grid, structure, num_threads=2, schedule="dynamic"
        ) as solver:
            solver.run(1)
            work = solver.trace.work_by_thread("compute_fluid_collision")
        # all planes processed exactly once across threads
        assert work.sum() == SHAPE[0] * SHAPE[1] * SHAPE[2]
