"""Tests of the synchronization primitives (barriers, locks, executor)."""

import threading
import time

import pytest

from repro.parallel.barrier import InstrumentedBarrier
from repro.parallel.executor import WorkerError, WorkerPool, run_spmd
from repro.parallel.locks import OwnerLocks


class TestInstrumentedBarrier:
    def test_all_threads_cross(self):
        barrier = InstrumentedBarrier(4, "test")
        crossed = []
        lock = threading.Lock()

        def worker(tid):
            barrier.wait()
            with lock:
                crossed.append(tid)

        run_spmd(4, worker)
        assert sorted(crossed) == [0, 1, 2, 3]
        assert barrier.stats.crossings == 1

    def test_wait_time_recorded_for_early_arrivals(self):
        barrier = InstrumentedBarrier(2, "test")

        def worker(tid):
            if tid == 0:
                time.sleep(0.05)
            barrier.wait()

        run_spmd(2, worker)
        # the other thread waited for ~50ms
        assert barrier.stats.max_wait_seconds > 0.02
        assert barrier.stats.total_wait_seconds >= barrier.stats.max_wait_seconds

    def test_reusable_across_episodes(self):
        barrier = InstrumentedBarrier(3, "test")

        def worker(tid):
            for _ in range(5):
                barrier.wait()

        run_spmd(3, worker)
        assert barrier.stats.crossings == 5

    def test_reset_stats(self):
        barrier = InstrumentedBarrier(1, "test")
        barrier.wait()
        barrier.reset_stats()
        assert barrier.stats.crossings == 0

    def test_rejects_bad_parties(self):
        with pytest.raises(ValueError):
            InstrumentedBarrier(0)


class TestOwnerLocks:
    def test_mutual_exclusion(self):
        locks = OwnerLocks(2)
        counter = {"value": 0}

        def worker(tid):
            for _ in range(200):
                with locks.owning(0):
                    v = counter["value"]
                    counter["value"] = v + 1

        run_spmd(4, worker)
        assert counter["value"] == 800

    def test_acquisition_counting(self):
        locks = OwnerLocks(3)
        with locks.owning(1):
            pass
        with locks.owning(1):
            pass
        with locks.owning(2):
            pass
        assert locks.stats(1).acquisitions == 2
        assert locks.stats(2).acquisitions == 1
        assert locks.total_acquisitions() == 3

    def test_contention_detected(self):
        locks = OwnerLocks(1)
        start = threading.Barrier(2)

        def worker(tid):
            start.wait()
            with locks.owning(0):
                time.sleep(0.02)

        run_spmd(2, worker)
        assert locks.total_contentions() >= 1

    def test_reset(self):
        locks = OwnerLocks(2)
        with locks.owning(0):
            pass
        locks.reset_stats()
        assert locks.total_acquisitions() == 0

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            OwnerLocks(0)


class TestRunSpmd:
    def test_every_tid_runs_once(self):
        seen = []
        lock = threading.Lock()

        def worker(tid):
            with lock:
                seen.append(tid)

        run_spmd(5, worker)
        assert sorted(seen) == [0, 1, 2, 3, 4]

    def test_worker_error_propagates_with_tid(self):
        def worker(tid):
            if tid == 2:
                raise RuntimeError("boom")

        with pytest.raises(WorkerError, match="thread 2"):
            run_spmd(4, worker)

    def test_all_threads_join_despite_error(self):
        done = []
        lock = threading.Lock()

        def worker(tid):
            if tid == 0:
                raise ValueError("first fails")
            with lock:
                done.append(tid)

        with pytest.raises(WorkerError):
            run_spmd(3, worker)
        assert sorted(done) == [1, 2]

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            run_spmd(0, lambda tid: None)


class TestWorkerPool:
    def test_dispatch_runs_on_all_workers(self):
        seen = []
        lock = threading.Lock()
        with WorkerPool(4) as pool:
            pool.dispatch(lambda tid: (lock.acquire(), seen.append(tid), lock.release()))
        assert sorted(seen) == [0, 1, 2, 3]

    def test_dispatch_is_a_barrier(self):
        order = []
        lock = threading.Lock()

        def slow(tid):
            if tid == 0:
                time.sleep(0.03)
            with lock:
                order.append(("task1", tid))

        with WorkerPool(3) as pool:
            pool.dispatch(slow)
            pool.dispatch(lambda tid: order.append(("task2", tid)))
        task1 = [i for i, (name, _) in enumerate(order) if name == "task1"]
        task2 = [i for i, (name, _) in enumerate(order) if name == "task2"]
        assert max(task1) < min(task2)

    def test_errors_propagate(self):
        with WorkerPool(2) as pool:
            with pytest.raises(WorkerError, match="thread 1"):
                pool.dispatch(
                    lambda tid: (_ for _ in ()).throw(RuntimeError("x"))
                    if tid == 1
                    else None
                )
            # pool remains usable after an error
            pool.dispatch(lambda tid: None)

    def test_dispatch_count(self):
        with WorkerPool(2) as pool:
            pool.dispatch(lambda tid: None)
            pool.dispatch(lambda tid: None)
            assert pool.dispatch_count == 2

    def test_shutdown_idempotent(self):
        pool = WorkerPool(2)
        pool.shutdown()
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.dispatch(lambda tid: None)
