"""Tests of the cube-blocked fluid storage (paper Section V-A)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lbm.fields import FluidGrid
from repro.errors import PartitionError
from repro.parallel.cubes import CubeGrid


class TestConstruction:
    def test_cube_counts(self):
        cg = CubeGrid((8, 4, 4), cube_size=2)
        assert cg.cube_counts == (4, 2, 2)
        assert cg.num_cubes == 16

    def test_paper_figure6_example(self):
        """A 4x4x4 grid of cube size 2 gives 2x2x2 cubes."""
        cg = CubeGrid((4, 4, 4), cube_size=2)
        assert cg.cube_counts == (2, 2, 2)
        assert cg.df.shape == (8, 19, 2, 2, 2)

    def test_rejects_indivisible_grid(self):
        with pytest.raises(PartitionError, match="not divisible"):
            CubeGrid((7, 4, 4), cube_size=2)

    def test_rejects_bad_cube_size(self):
        with pytest.raises(PartitionError):
            CubeGrid((4, 4, 4), cube_size=0)

    def test_each_cube_block_is_contiguous(self):
        """The defining property: a cube's data is one contiguous block."""
        cg = CubeGrid((4, 4, 4), cube_size=2)
        assert cg.df[3].flags["C_CONTIGUOUS"]
        assert cg.force[5].flags["C_CONTIGUOUS"]

    def test_cube_nbytes(self):
        cg = CubeGrid((4, 4, 4), cube_size=2)
        # 48 doubles per node * 8 nodes
        assert cg.cube_nbytes == 48 * 8 * 8


class TestIndexArithmetic:
    def test_linear_coords_roundtrip(self):
        cg = CubeGrid((8, 6, 4), cube_size=2)
        for c in range(cg.num_cubes):
            assert int(cg.cube_linear(*cg.cube_coords(c))) == c

    def test_neighbor_wraps_periodically(self):
        cg = CubeGrid((4, 4, 4), cube_size=2)
        assert cg.neighbor_cube((0, 0, 0), (-1, 0, 0)) == int(
            cg.cube_linear(1, 0, 0)
        )
        assert cg.neighbor_cube((1, 1, 1), (1, 1, 1)) == int(cg.cube_linear(0, 0, 0))

    def test_locate_flat_roundtrip(self):
        cg = CubeGrid((4, 6, 8), cube_size=2)
        nx, ny, nz = cg.shape
        flat = np.arange(nx * ny * nz)
        cubes, locals_ = cg.locate_flat(flat)
        # rebuild global coordinates from (cube, local) and compare
        k = cg.cube_size
        ncx, ncy, ncz = cg.cube_counts
        ci = cubes // (ncy * ncz)
        cj = (cubes // ncz) % ncy
        ck = cubes % ncz
        lx = locals_ // (k * k)
        ly = (locals_ // k) % k
        lz = locals_ % k
        x = ci * k + lx
        y = cj * k + ly
        z = ck * k + lz
        np.testing.assert_array_equal((x * ny + y) * nz + z, flat)


class TestLayoutConversion:
    @given(
        dims=st.tuples(
            st.sampled_from([2, 4, 6]),
            st.sampled_from([2, 4]),
            st.sampled_from([2, 4]),
        ),
        k=st.sampled_from([1, 2]),
    )
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_preserves_state(self, dims, k):
        rng = np.random.default_rng(42)
        grid = FluidGrid(dims, tau=0.8)
        grid.df[...] = rng.standard_normal(grid.df.shape)
        grid.df_new[...] = rng.standard_normal(grid.df.shape)
        grid.velocity[...] = rng.standard_normal(grid.velocity.shape)
        grid.velocity_shifted[...] = rng.standard_normal(grid.velocity.shape)
        grid.density[...] = rng.standard_normal(grid.density.shape)
        grid.force[...] = rng.standard_normal(grid.force.shape)
        cg = CubeGrid.from_fluid_grid(grid, cube_size=k)
        back = cg.to_fluid_grid()
        assert back.state_allclose(grid, rtol=0, atol=0)

    def test_cube_content_matches_grid_region(self):
        grid = FluidGrid((4, 4, 4), tau=0.8)
        rng = np.random.default_rng(7)
        grid.df[...] = rng.standard_normal(grid.df.shape)
        cg = CubeGrid.from_fluid_grid(grid, cube_size=2)
        c = int(cg.cube_linear(1, 0, 1))
        np.testing.assert_array_equal(
            cg.df[c], grid.df[:, 2:4, 0:2, 2:4]
        )

    def test_tau_carried(self):
        grid = FluidGrid((4, 4, 4), tau=0.73)
        cg = CubeGrid.from_fluid_grid(grid, cube_size=2)
        assert cg.tau == 0.73
        assert cg.to_fluid_grid().tau == 0.73
