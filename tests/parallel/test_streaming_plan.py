"""Property tests of the cube streaming decomposition.

The plan splits each direction's periodic shift into a within-cube part
and neighbour spills; the invariant is that, per direction, the
destination regions across the plan exactly tile a cube, with every
source node written exactly once.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lbm.lattice import E, Q
from repro.parallel.cube_solver import _streaming_plan


class TestStreamingPlan:
    @given(k=st.integers(1, 6))
    @settings(max_examples=12, deadline=None)
    def test_sources_tile_the_cube(self, k):
        """Per direction, the source slices partition all k^3 nodes."""
        plan = _streaming_plan(k)
        for i in range(Q):
            covered = np.zeros((k, k, k), dtype=int)
            for src, _, _ in plan[i]:
                covered[src] += 1
            assert (covered == 1).all(), f"direction {i}"

    @given(k=st.integers(1, 6))
    @settings(max_examples=12, deadline=None)
    def test_destinations_tile_the_cube(self, k):
        """Per direction, grouping by target offset, destinations tile.

        Every node of every (possibly neighbouring) cube receives
        exactly one write for each direction — summed over the offsets
        that map to it.
        """
        plan = _streaming_plan(k)
        for i in range(Q):
            received = np.zeros((k, k, k), dtype=int)
            for _, dst, _ in plan[i]:
                received[dst] += 1
            assert (received == 1).all(), f"direction {i}"

    @given(k=st.integers(2, 6))
    @settings(max_examples=10, deadline=None)
    def test_offsets_match_direction_sign(self, k):
        plan = _streaming_plan(k)
        for i in range(Q):
            for _, _, off in plan[i]:
                for axis in range(3):
                    e = int(E[i, axis])
                    assert off[axis] in (0, e)

    def test_shift_relation_between_src_and_dst(self):
        """dst = src + e within the periodic tiling, checked by value."""
        k = 3
        plan = _streaming_plan(k)
        rng = np.random.default_rng(0)
        for i in range(Q):
            ex, ey, ez = (int(c) for c in E[i])
            source = rng.standard_normal((k, k, k))
            # one cube surrounded by copies of itself = periodic k-cube
            result = np.empty((k, k, k))
            for src, dst, off in plan[i]:
                result[dst] = source[src]
            expected = np.roll(source, shift=(ex, ey, ez), axis=(0, 1, 2))
            np.testing.assert_array_equal(result, expected)

    def test_entry_counts(self):
        """1 entry for rest, 2 per axis-direction, 4 per diagonal (k>1)."""
        plan = _streaming_plan(4)
        sizes = sorted(len(entries) for entries in plan)
        assert sizes.count(1) == 1  # rest
        assert sizes.count(2) == 6  # axis directions
        assert sizes.count(4) == 12  # diagonals

    def test_unit_cube_all_spills(self):
        """k=1: every non-rest population leaves the cube entirely."""
        plan = _streaming_plan(1)
        for i in range(1, Q):
            assert len(plan[i]) == 1
            _, _, off = plan[i][0]
            assert off == tuple(int(c) for c in E[i])
