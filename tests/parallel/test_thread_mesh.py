"""Tests of the 3D thread-mesh factorization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.parallel.thread_mesh import ThreadMesh, factorize_3d


class TestFactorize:
    @given(n=st.integers(1, 512))
    @settings(max_examples=100, deadline=None)
    def test_product_equals_n(self, n):
        p, q, r = factorize_3d(n)
        assert p * q * r == n
        assert p >= q >= r >= 1

    def test_paper_figure6_eight_threads(self):
        """8 threads lay out as a 2x2x2 mesh (paper Figure 6)."""
        assert factorize_3d(8) == (2, 2, 2)

    def test_perfect_cubes(self):
        assert factorize_3d(27) == (3, 3, 3)
        assert factorize_3d(64) == (4, 4, 4)

    def test_near_cubic_for_non_cubes(self):
        p, q, r = factorize_3d(16)
        assert (p, q, r) == (4, 2, 2)

    def test_primes_degenerate_gracefully(self):
        assert factorize_3d(7) == (7, 1, 1)

    def test_rejects_non_positive(self):
        with pytest.raises(PartitionError):
            factorize_3d(0)


class TestThreadMesh:
    def test_for_threads(self):
        mesh = ThreadMesh.for_threads(12)
        assert mesh.num_threads == 12

    @given(n=st.integers(1, 128))
    @settings(max_examples=60, deadline=None)
    def test_linear_id_coords_roundtrip(self, n):
        mesh = ThreadMesh.for_threads(n)
        seen = set()
        for tid in range(mesh.num_threads):
            coords = mesh.coords(tid)
            assert mesh.linear_id(coords) == tid
            seen.add(coords)
        assert len(seen) == n  # bijection

    def test_out_of_range_tid(self):
        mesh = ThreadMesh.for_threads(4)
        with pytest.raises(PartitionError):
            mesh.coords(4)

    def test_out_of_range_coords(self):
        mesh = ThreadMesh((2, 2, 1))
        with pytest.raises(PartitionError):
            mesh.linear_id((2, 0, 0))

    def test_rejects_bad_dims(self):
        with pytest.raises(PartitionError):
            ThreadMesh((0, 2, 2))
