"""Randomized concurrency stress of the synchronization primitives.

Sweeps thread counts with seeded arrival jitter through the
instrumented barrier and the owner locks, under the fault-suite SIGALRM
deadline (``@pytest.mark.faults`` arms the watchdog in conftest), so a
reintroduced lost-wakeup or deadlock fails the test instead of hanging
CI.  Every assertion is exact — generation counts, acquisition totals —
because the primitives promise exact bookkeeping, not approximations.
"""

import random
import threading
import time

import pytest

from repro.errors import BarrierTimeoutError
from repro.parallel.barrier import InstrumentedBarrier
from repro.parallel.executor import WorkerError, run_spmd
from repro.parallel.locks import OwnerLocks

pytestmark = pytest.mark.faults  # arm the conftest SIGALRM watchdog

SEED = 20150715


class TestBarrierStress:
    @pytest.mark.parametrize("parties", [2, 3, 5, 8])
    def test_jittered_arrivals_exact_generation_count(self, parties):
        """Random per-thread arrival jitter never desynchronizes the
        barrier: every thread observes every generation exactly once."""
        iterations = 20
        barrier = InstrumentedBarrier(parties, "stress", timeout=30.0)
        seen = [[] for _ in range(parties)]
        generation = [0]

        def worker(tid):
            rng = random.Random(SEED * 1000 + tid)
            for _ in range(iterations):
                time.sleep(rng.uniform(0.0, 0.003))
                index = barrier.wait()
                if index == 0:
                    generation[0] += 1
                barrier.wait()  # second phase: generation[0] is stable
                seen[tid].append(generation[0])

        run_spmd(parties, worker, timeout=60.0)
        assert generation[0] == iterations
        for tid in range(parties):
            assert seen[tid] == list(range(1, iterations + 1))
        assert barrier.stats.crossings == 2 * iterations
        assert barrier.stats.total_wait_seconds >= 0.0
        assert barrier.stats.max_wait_seconds <= 30.0

    def test_interleaved_pair_of_barriers(self):
        """Two barriers used alternately (the cube solver's pattern)
        keep independent, exact crossing counts under jitter."""
        parties, iterations = 4, 15
        after_a = InstrumentedBarrier(parties, "after_a", timeout=30.0)
        after_b = InstrumentedBarrier(parties, "after_b", timeout=30.0)
        counter = [0]
        lock = threading.Lock()

        def worker(tid):
            rng = random.Random(SEED + tid)
            for _ in range(iterations):
                with lock:
                    counter[0] += 1
                after_a.wait()
                time.sleep(rng.uniform(0.0, 0.002))
                after_b.wait()

        run_spmd(parties, worker, timeout=60.0)
        assert counter[0] == parties * iterations
        assert after_a.stats.crossings == iterations
        assert after_b.stats.crossings == iterations

    def test_abort_releases_jittered_waiters(self):
        """A worker dying mid-episode aborts the barrier; every peer
        surfaces a typed error instead of waiting out the deadline."""
        parties = 4
        barrier = InstrumentedBarrier(parties, "doomed", timeout=30.0)
        failures = []
        lock = threading.Lock()

        def worker(tid):
            rng = random.Random(SEED - tid)
            try:
                for step in range(10):
                    time.sleep(rng.uniform(0.0, 0.002))
                    if tid == 0 and step == 3:
                        barrier.abort()
                        raise RuntimeError("worker 0 dies")
                    barrier.wait()
            except BarrierTimeoutError:
                with lock:
                    failures.append(tid)
                raise

        start = time.perf_counter()
        with pytest.raises(WorkerError):
            run_spmd(parties, worker, timeout=60.0)
        elapsed = time.perf_counter() - start
        assert elapsed < 10.0, "peers waited out the deadline instead of aborting"
        assert sorted(failures) == [1, 2, 3]


class TestOwnerLocksStress:
    @pytest.mark.parametrize("num_threads", [2, 4, 8])
    def test_exact_acquisition_totals_under_contention(self, num_threads):
        """Randomly interleaved owner-lock acquisitions count exactly:
        every acquisition is recorded, contentions never exceed them,
        and the protected increments are race-free."""
        per_thread = 150
        locks = OwnerLocks(num_threads)
        cells = [0] * num_threads

        def worker(tid):
            rng = random.Random(SEED * 7 + tid)
            for _ in range(per_thread):
                owner = rng.randrange(num_threads)
                with locks.owning(owner):
                    value = cells[owner]
                    if rng.random() < 0.05:
                        time.sleep(0.0002)  # widen the race window
                    cells[owner] = value + 1

        run_spmd(num_threads, worker, timeout=60.0)
        assert sum(cells) == num_threads * per_thread
        assert locks.total_acquisitions() == num_threads * per_thread
        assert 0 <= locks.total_contentions() <= locks.total_acquisitions()
        per_owner = [locks.stats(t).acquisitions for t in range(num_threads)]
        assert per_owner == cells

    def test_reset_stats_zeroes_counters(self):
        locks = OwnerLocks(2)
        with locks.owning(0):
            pass
        assert locks.total_acquisitions() == 1
        locks.reset_stats()
        assert locks.total_acquisitions() == 0
        assert locks.total_contentions() == 0


class TestBarrierTimeoutUnderJitter:
    def test_missing_party_times_out_with_stall_report(self):
        """parties=3 but only two jittered arrivals: the deadline fires
        with a stall report instead of hanging."""
        barrier = InstrumentedBarrier(3, "short", timeout=0.2)

        def worker(tid):
            rng = random.Random(SEED + 31 * tid)
            time.sleep(rng.uniform(0.0, 0.002))
            barrier.wait()

        with pytest.raises(WorkerError) as excinfo:
            run_spmd(2, worker, timeout=30.0)
        original = excinfo.value.original
        assert isinstance(original, BarrierTimeoutError)
        assert barrier.stats.crossings == 0
