"""Equivalence of the three solver programs.

The paper: "all the numerical results have been verified to be correct
by comparing the new result to that of the sequential implementation."
These tests enforce exactly that, across thread counts, cube sizes,
distribution functions, boundary conditions and forcing.
"""

import numpy as np
import pytest

from repro.core.ib import geometry
from repro.core.lbm.boundaries import BounceBackWall, OutflowBoundary
from repro.core.lbm.fields import FluidGrid
from repro.core.solver import SequentialLBMIBSolver
from repro.errors import ConfigurationError
from repro.parallel import CubeGrid, CubeLBMIBSolver, OpenMPLBMIBSolver

SHAPE = (12, 8, 8)
STEPS = 6
RTOL, ATOL = 1e-10, 1e-12


def _make_state(with_structure=True, perturb=True):
    grid = FluidGrid(SHAPE, tau=0.8)
    structure = None
    if with_structure:
        structure = geometry.flat_sheet(
            SHAPE, num_fibers=5, nodes_per_fiber=5, stretch_coefficient=0.04
        )
        if perturb:
            structure.sheets[0].positions[2, 2, 0] += 0.7
    return grid, structure


@pytest.fixture(scope="module")
def sequential_result():
    grid, structure = _make_state()
    SequentialLBMIBSolver(grid, structure).run(STEPS)
    return grid, structure


class TestOpenMPEquivalence:
    @pytest.mark.parametrize("threads", [1, 2, 3, 4, 6])
    def test_matches_sequential(self, sequential_result, threads):
        ref_grid, ref_structure = sequential_result
        grid, structure = _make_state()
        with OpenMPLBMIBSolver(grid, structure, num_threads=threads) as solver:
            solver.run(STEPS)
        assert ref_grid.state_allclose(grid, rtol=RTOL, atol=ATOL)
        assert ref_structure.state_allclose(structure, rtol=RTOL, atol=ATOL)

    @pytest.mark.parametrize("fiber_method", ["block", "cyclic", "block_cyclic"])
    def test_fiber_distribution_methods(self, sequential_result, fiber_method):
        ref_grid, ref_structure = sequential_result
        grid, structure = _make_state()
        with OpenMPLBMIBSolver(
            grid, structure, num_threads=3, fiber_method=fiber_method
        ) as solver:
            solver.run(STEPS)
        assert ref_grid.state_allclose(grid, rtol=RTOL, atol=ATOL)
        assert ref_structure.state_allclose(structure, rtol=RTOL, atol=ATOL)

    def test_fluid_only(self):
        grid_a, _ = _make_state(with_structure=False)
        grid_a.initialize_equilibrium(
            velocity=0.01 * np.random.default_rng(1).standard_normal((3,) + SHAPE)
        )
        grid_b = grid_a.copy()
        SequentialLBMIBSolver(grid_a, None).run(STEPS)
        with OpenMPLBMIBSolver(grid_b, None, num_threads=4) as solver:
            solver.run(STEPS)
        assert grid_a.state_allclose(grid_b, rtol=RTOL, atol=ATOL)

    def test_trace_recorded(self):
        grid, structure = _make_state()
        with OpenMPLBMIBSolver(grid, structure, num_threads=2) as solver:
            solver.run(2)
            assert solver.trace is not None
            kernels_seen = {e.kernel for e in solver.trace.events}
        assert "compute_fluid_collision" in kernels_seen
        assert "spread_force_from_fibers_to_fluid" in kernels_seen


class TestCubeEquivalence:
    @pytest.mark.parametrize(
        "cube_size,threads", [(2, 1), (2, 4), (4, 2), (4, 8), (2, 3)]
    )
    def test_matches_sequential(self, sequential_result, cube_size, threads):
        ref_grid, ref_structure = sequential_result
        grid, structure = _make_state()
        cg = CubeGrid.from_fluid_grid(grid, cube_size=cube_size)
        CubeLBMIBSolver(cg, structure, num_threads=threads).run(STEPS)
        assert ref_grid.state_allclose(cg.to_fluid_grid(), rtol=RTOL, atol=ATOL)
        assert ref_structure.state_allclose(structure, rtol=RTOL, atol=ATOL)

    @pytest.mark.parametrize("method", ["block", "cyclic", "block_cyclic"])
    def test_cube_distribution_methods(self, sequential_result, method):
        ref_grid, ref_structure = sequential_result
        grid, structure = _make_state()
        cg = CubeGrid.from_fluid_grid(grid, cube_size=2)
        CubeLBMIBSolver(
            cg, structure, num_threads=4, cube_method=method, fiber_method=method
        ).run(STEPS)
        assert ref_grid.state_allclose(cg.to_fluid_grid(), rtol=RTOL, atol=ATOL)
        assert ref_structure.state_allclose(structure, rtol=RTOL, atol=ATOL)

    def test_locks_disabled_same_numerics(self, sequential_result):
        """Cross-cube writes are element-disjoint: locks do not affect results."""
        ref_grid, ref_structure = sequential_result
        grid, structure = _make_state()
        cg = CubeGrid.from_fluid_grid(grid, cube_size=2)
        CubeLBMIBSolver(cg, structure, num_threads=4, use_locks=False).run(STEPS)
        assert ref_grid.state_allclose(cg.to_fluid_grid(), rtol=RTOL, atol=ATOL)

    def test_cube_size_one(self, sequential_result):
        ref_grid, ref_structure = sequential_result
        grid, structure = _make_state()
        cg = CubeGrid.from_fluid_grid(grid, cube_size=1)
        CubeLBMIBSolver(cg, structure, num_threads=2).run(STEPS)
        assert ref_grid.state_allclose(cg.to_fluid_grid(), rtol=RTOL, atol=ATOL)

    def test_barriers_crossed_three_per_step(self):
        grid, structure = _make_state()
        cg = CubeGrid.from_fluid_grid(grid, cube_size=4)
        solver = CubeLBMIBSolver(cg, structure, num_threads=2)
        solver.run(4)
        for name, barrier in solver.barriers.items():
            assert barrier.stats.crossings == 4, name

    def test_locks_actually_acquired(self):
        grid, structure = _make_state()
        cg = CubeGrid.from_fluid_grid(grid, cube_size=2)
        solver = CubeLBMIBSolver(cg, structure, num_threads=4)
        solver.run(2)
        assert solver.locks.total_acquisitions() > 0


class TestWithBoundaries:
    def _boundaries(self):
        return [
            BounceBackWall(1, "low"),
            BounceBackWall(1, "high", wall_velocity=(0.02, 0.0, 0.0)),
        ]

    def test_all_three_solvers_agree(self):
        results = []
        for solver_kind in ("sequential", "openmp", "cube"):
            grid, structure = _make_state()
            if solver_kind == "sequential":
                SequentialLBMIBSolver(
                    grid, structure, boundaries=self._boundaries()
                ).run(STEPS)
                results.append((grid, structure))
            elif solver_kind == "openmp":
                with OpenMPLBMIBSolver(
                    grid, structure, num_threads=3, boundaries=self._boundaries()
                ) as s:
                    s.run(STEPS)
                results.append((grid, structure))
            else:
                cg = CubeGrid.from_fluid_grid(grid, cube_size=4)
                CubeLBMIBSolver(
                    cg, structure, num_threads=4, boundaries=self._boundaries()
                ).run(STEPS)
                results.append((cg.to_fluid_grid(), structure))
        ref = results[0]
        for grid, structure in results[1:]:
            assert ref[0].state_allclose(grid, rtol=RTOL, atol=ATOL)
            assert ref[1].state_allclose(structure, rtol=RTOL, atol=ATOL)

    def test_outflow_in_cube_solver(self):
        grid, structure = _make_state()
        boundaries = [
            BounceBackWall(0, "low", wall_velocity=(0.02, 0, 0)),
            OutflowBoundary(0, "high"),
        ]
        ref_grid, ref_structure = _make_state()
        SequentialLBMIBSolver(ref_grid, ref_structure, boundaries=boundaries).run(STEPS)
        cg = CubeGrid.from_fluid_grid(grid, cube_size=4)
        CubeLBMIBSolver(
            cg, structure, num_threads=2, boundaries=boundaries
        ).run(STEPS)
        assert ref_grid.state_allclose(cg.to_fluid_grid(), rtol=RTOL, atol=ATOL)

    def test_outflow_rejected_for_unit_cubes(self):
        grid, structure = _make_state()
        cg = CubeGrid.from_fluid_grid(grid, cube_size=1)
        with pytest.raises(ConfigurationError, match="cube_size >= 2"):
            CubeLBMIBSolver(
                cg, structure, num_threads=2,
                boundaries=[OutflowBoundary(0, "high")],
            )


class TestExternalForceEquivalence:
    def test_all_three_solvers_agree(self):
        force = (2e-5, 0.0, -1e-5)
        grid_a, struct_a = _make_state()
        SequentialLBMIBSolver(grid_a, struct_a, external_force=force).run(STEPS)

        grid_b, struct_b = _make_state()
        with OpenMPLBMIBSolver(
            grid_b, struct_b, num_threads=3, external_force=force
        ) as s:
            s.run(STEPS)
        assert grid_a.state_allclose(grid_b, rtol=RTOL, atol=ATOL)

        grid_c, struct_c = _make_state()
        cg = CubeGrid.from_fluid_grid(grid_c, cube_size=4)
        CubeLBMIBSolver(cg, struct_c, num_threads=4, external_force=force).run(STEPS)
        assert grid_a.state_allclose(cg.to_fluid_grid(), rtol=RTOL, atol=ATOL)
