"""Property-based sweep of the data-distribution functions (Section V-A).

Seeded stdlib ``random`` drives randomized cube-grid shapes, thread
meshes, and fiber counts through all three distribution methods and
asserts the properties any ``cube2thread`` / ``fiber2thread`` must
satisfy regardless of shape:

* **totality** — every cube/fiber has exactly one owner;
* **range** — every owner is a valid thread id;
* **determinism** — the mapping is a pure function of the coordinates;
* **bounded imbalance** — per-axis part sizes differ by at most one
  block, so the 3D load factorizes into per-axis loads with a provable
  bound;
* **consistency** — ``cubes_of`` / ``fibers_of`` partition the index
  space exactly as the forward map says.
"""

import random

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.parallel.distribution import (
    DISTRIBUTION_METHODS,
    CubeDistribution,
    FiberDistribution,
    block_cyclic_map_1d,
    block_map_1d,
    cyclic_map_1d,
)
from repro.parallel.thread_mesh import ThreadMesh

#: Seeded cases: property tests must be reproducible in CI.
SEED = 20150715
NUM_CASES = 25


def _random_cases(seed=SEED, n=NUM_CASES):
    rng = random.Random(seed)
    cases = []
    for _ in range(n):
        counts = tuple(rng.randint(1, 12) for _ in range(3))
        dims = tuple(rng.randint(1, c) for c in counts)
        method = rng.choice(DISTRIBUTION_METHODS)
        block = rng.randint(1, 4)
        cases.append((counts, dims, method, block))
    return cases


CASES = _random_cases()
IDS = [
    f"{c[2]}-cubes{c[0]}-mesh{c[1]}-b{c[3]}".replace(" ", "") for c in CASES
]


def _map_1d(method, block):
    if method == "block":
        return lambda idx, extent, parts: block_map_1d(idx, extent, parts)
    if method == "cyclic":
        return lambda idx, extent, parts: cyclic_map_1d(idx, extent, parts)
    return lambda idx, extent, parts: block_cyclic_map_1d(
        idx, extent, parts, block=block
    )


class TestOneDimensionalMaps:
    @pytest.mark.parametrize("method", DISTRIBUTION_METHODS)
    def test_total_in_range_and_bounded(self, method):
        rng = random.Random(SEED ^ hash(method))
        for _ in range(50):
            extent = rng.randint(1, 200)
            parts = rng.randint(1, extent)
            block = rng.randint(1, 5)
            owners = np.asarray(
                _map_1d(method, block)(np.arange(extent), extent, parts)
            )
            assert owners.shape == (extent,)
            assert owners.min() >= 0 and owners.max() < parts
            loads = np.bincount(owners, minlength=parts)
            assert loads.sum() == extent  # total and disjoint by construction
            # Block/cyclic spread sizes differ by <= 1; block-cyclic by
            # <= block (one partial block plus whole-block rotation).
            bound = 1 if method in ("block", "cyclic") else block
            assert loads.max() - loads.min() <= bound, (
                f"{method} extent={extent} parts={parts} block={block} "
                f"loads={loads.tolist()}"
            )

    def test_block_map_is_monotone_and_contiguous(self):
        rng = random.Random(SEED + 1)
        for _ in range(50):
            extent = rng.randint(1, 100)
            parts = rng.randint(1, extent)
            owners = block_map_1d(np.arange(extent), extent, parts)
            assert (np.diff(owners) >= 0).all()  # contiguous runs
            assert set(np.asarray(owners).tolist()) == set(range(parts))

    def test_cyclic_map_is_round_robin(self):
        owners = cyclic_map_1d(np.arange(10), 10, 3)
        assert owners.tolist() == [0, 1, 2, 0, 1, 2, 0, 1, 2, 0]

    def test_invalid_arguments_raise(self):
        with pytest.raises(PartitionError):
            block_map_1d(0, 0, 1)
        with pytest.raises(PartitionError):
            cyclic_map_1d(0, 4, 0)
        with pytest.raises(PartitionError):
            block_cyclic_map_1d(0, 4, 2, block=0)


class TestCubeDistributionProperties:
    @pytest.mark.parametrize("counts,dims,method,block", CASES, ids=IDS)
    def test_total_disjoint_in_range(self, counts, dims, method, block):
        dist = CubeDistribution(
            counts, ThreadMesh(dims), method=method, block=block
        )
        table = np.asarray(dist.owner_table())
        num_threads = dist.mesh.num_threads
        assert table.shape == counts
        assert table.min() >= 0 and table.max() < num_threads
        loads = dist.load_per_thread()
        # totality: the per-thread loads partition the cube count
        assert loads.sum() == np.prod(counts)
        # consistency: cubes_of(t) is exactly the preimage of t
        total = 0
        for tid in range(num_threads):
            coords = dist.cubes_of(tid)
            total += len(coords)
            assert len(coords) == loads[tid]
            if len(coords):
                owners = dist.cube2thread(
                    coords[:, 0], coords[:, 1], coords[:, 2]
                )
                assert (np.asarray(owners) == tid).all()
        assert total == np.prod(counts)

    @pytest.mark.parametrize("counts,dims,method,block", CASES, ids=IDS)
    def test_load_factorizes_per_axis(self, counts, dims, method, block):
        """3D load(tid) is the product of the three 1D part sizes, so the
        global imbalance is bounded by the per-axis bounds."""
        dist = CubeDistribution(
            counts, ThreadMesh(dims), method=method, block=block
        )
        fn = _map_1d(method, block)
        axis_loads = [
            np.bincount(
                np.asarray(fn(np.arange(extent), extent, parts)),
                minlength=parts,
            )
            for extent, parts in zip(counts, dims)
        ]
        loads = dist.load_per_thread()
        p, q, r = dims
        for tid in range(dist.mesh.num_threads):
            i, j, k = tid // (q * r), (tid // r) % q, tid % r
            expected = axis_loads[0][i] * axis_loads[1][j] * axis_loads[2][k]
            assert loads[tid] == expected

    @pytest.mark.parametrize("counts,dims,method,block", CASES, ids=IDS)
    def test_deterministic(self, counts, dims, method, block):
        a = CubeDistribution(counts, ThreadMesh(dims), method=method, block=block)
        b = CubeDistribution(counts, ThreadMesh(dims), method=method, block=block)
        assert np.array_equal(a.owner_table(), b.owner_table())

    def test_mesh_larger_than_cubes_rejected(self):
        with pytest.raises(PartitionError):
            CubeDistribution((2, 2, 2), ThreadMesh((3, 1, 1)))

    def test_unknown_method_rejected(self):
        with pytest.raises(PartitionError, match="unknown distribution"):
            CubeDistribution((4, 4, 4), ThreadMesh((2, 2, 2)), method="zigzag")


class TestFiberDistributionProperties:
    @pytest.mark.parametrize("method", DISTRIBUTION_METHODS)
    def test_total_disjoint_in_range_bounded(self, method):
        rng = random.Random(SEED ^ len(method))
        for _ in range(40):
            fibers = rng.randint(1, 64)
            threads = rng.randint(1, 80)  # may exceed the fiber count
            block = rng.randint(1, 4)
            dist = FiberDistribution(fibers, threads, method=method, block=block)
            owners = np.asarray(dist.fiber2thread(np.arange(fibers)))
            assert owners.min() >= 0 and owners.max() < threads
            loads = dist.load_per_thread()
            assert loads.sum() == fibers
            assert loads.shape == (threads,)
            # imbalance bound over the clipped part count
            parts = min(threads, fibers)
            active = loads[:parts]
            bound = 1 if method in ("block", "cyclic") else block
            assert active.max() - active.min() <= bound
            # threads beyond the clipped part count own nothing
            assert (loads[parts:] == 0).all()
            # fibers_of partitions the index space
            owned = np.concatenate(
                [dist.fibers_of(tid) for tid in range(threads)]
            )
            assert sorted(owned.tolist()) == list(range(fibers))

    def test_invalid_arguments_raise(self):
        with pytest.raises(PartitionError):
            FiberDistribution(0, 2)
        with pytest.raises(PartitionError):
            FiberDistribution(4, 0)
