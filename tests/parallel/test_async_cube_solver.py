"""Tests of the dependency-driven (barrier-free) cube solver.

The paper's future-work prototype: dynamic task scheduling replaces the
intra-step global barriers.  The contract is unchanged numerics.
"""

import numpy as np
import pytest

from repro.core.ib import geometry
from repro.core.lbm.boundaries import BounceBackWall
from repro.core.lbm.fields import FluidGrid
from repro.core.solver import SequentialLBMIBSolver
from repro.parallel import AsyncCubeLBMIBSolver, CubeGrid

SHAPE = (12, 8, 8)
STEPS = 6
RTOL, ATOL = 1e-10, 1e-12


def _make_state(with_structure=True):
    grid = FluidGrid(SHAPE, tau=0.8)
    structure = None
    if with_structure:
        structure = geometry.flat_sheet(
            SHAPE, num_fibers=5, nodes_per_fiber=5, stretch_coefficient=0.04
        )
        structure.sheets[0].positions[2, 2, 0] += 0.7
    return grid, structure


@pytest.fixture(scope="module")
def sequential_result():
    grid, structure = _make_state()
    SequentialLBMIBSolver(grid, structure).run(STEPS)
    return grid, structure


class TestEquivalence:
    @pytest.mark.parametrize("cube_size,threads", [(2, 1), (2, 4), (4, 3), (4, 8)])
    def test_matches_sequential(self, sequential_result, cube_size, threads):
        ref_grid, ref_structure = sequential_result
        grid, structure = _make_state()
        cg = CubeGrid.from_fluid_grid(grid, cube_size=cube_size)
        AsyncCubeLBMIBSolver(cg, structure, num_threads=threads).run(STEPS)
        assert ref_grid.state_allclose(cg.to_fluid_grid(), rtol=RTOL, atol=ATOL)
        assert ref_structure.state_allclose(structure, rtol=RTOL, atol=ATOL)

    def test_repeated_runs_deterministic_within_tolerance(self):
        """Different task interleavings must not change the physics."""
        results = []
        for _ in range(3):
            grid, structure = _make_state()
            cg = CubeGrid.from_fluid_grid(grid, cube_size=2)
            AsyncCubeLBMIBSolver(cg, structure, num_threads=4).run(4)
            results.append(cg.to_fluid_grid())
        for other in results[1:]:
            assert results[0].state_allclose(other, rtol=RTOL, atol=ATOL)

    def test_with_boundaries(self, ):
        boundaries = [BounceBackWall(1, "low"), BounceBackWall(1, "high")]
        ref_grid, ref_structure = _make_state()
        SequentialLBMIBSolver(ref_grid, ref_structure, boundaries=boundaries).run(STEPS)
        grid, structure = _make_state()
        cg = CubeGrid.from_fluid_grid(grid, cube_size=4)
        AsyncCubeLBMIBSolver(
            cg, structure, num_threads=4, boundaries=boundaries
        ).run(STEPS)
        assert ref_grid.state_allclose(cg.to_fluid_grid(), rtol=RTOL, atol=ATOL)

    def test_fluid_only(self):
        grid_a, _ = _make_state(with_structure=False)
        rng = np.random.default_rng(3)
        grid_a.initialize_equilibrium(
            velocity=0.01 * rng.standard_normal((3,) + SHAPE)
        )
        grid_b = grid_a.copy()
        SequentialLBMIBSolver(grid_a, None).run(STEPS)
        cg = CubeGrid.from_fluid_grid(grid_b, cube_size=2)
        AsyncCubeLBMIBSolver(cg, None, num_threads=3).run(STEPS)
        assert grid_a.state_allclose(cg.to_fluid_grid(), rtol=RTOL, atol=ATOL)

    def test_external_force(self):
        force = (2e-5, 0.0, 0.0)
        grid_a, struct_a = _make_state()
        SequentialLBMIBSolver(grid_a, struct_a, external_force=force).run(STEPS)
        grid_b, struct_b = _make_state()
        cg = CubeGrid.from_fluid_grid(grid_b, cube_size=4)
        AsyncCubeLBMIBSolver(
            cg, struct_b, num_threads=4, external_force=force
        ).run(STEPS)
        assert grid_a.state_allclose(cg.to_fluid_grid(), rtol=RTOL, atol=ATOL)


class TestSchedule:
    def test_task_count_accounting(self):
        grid, structure = _make_state()
        cg = CubeGrid.from_fluid_grid(grid, cube_size=4)
        solver = AsyncCubeLBMIBSolver(cg, structure, num_threads=2)
        steps = 3
        solver.run(steps)
        blocks = len(solver._fiber_blocks())
        expected_per_step = 3 * cg.num_cubes + 2 * blocks
        assert solver.tasks_executed == steps * expected_per_step

    def test_no_intra_step_barrier_crossings(self):
        """The inherited barriers are never used by the async schedule."""
        grid, structure = _make_state()
        cg = CubeGrid.from_fluid_grid(grid, cube_size=4)
        solver = AsyncCubeLBMIBSolver(cg, structure, num_threads=2)
        solver.run(2)
        assert all(b.stats.crossings == 0 for b in solver.barriers.values())

    def test_stream_targets_cover_neighbourhood(self):
        grid, _ = _make_state(with_structure=False)
        cg = CubeGrid.from_fluid_grid(grid, cube_size=4)
        solver = AsyncCubeLBMIBSolver(cg, None, num_threads=1)
        targets = solver.stream_targets(0)
        assert 0 in targets
        assert len(targets) > 1  # spills into neighbours

    def test_indegree_consistent_with_targets(self):
        grid, _ = _make_state(with_structure=False)
        cg = CubeGrid.from_fluid_grid(grid, cube_size=2)
        solver = AsyncCubeLBMIBSolver(cg, None, num_threads=1)
        total_edges = sum(len(t) for t in solver._targets)
        assert solver._stream_indegree.sum() == total_edges

    def test_negative_steps_rejected(self):
        grid, _ = _make_state(with_structure=False)
        cg = CubeGrid.from_fluid_grid(grid, cube_size=2)
        solver = AsyncCubeLBMIBSolver(cg, None, num_threads=1)
        with pytest.raises(ValueError):
            solver.run(-1)
