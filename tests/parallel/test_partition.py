"""Tests of the OpenMP slab partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.parallel.partition import Slab, chunked_ranges, partition_sizes, static_slabs


class TestStaticSlabs:
    @given(extent=st.integers(1, 200), threads=st.integers(1, 64))
    @settings(max_examples=100, deadline=None)
    def test_partition_properties(self, extent, threads):
        slabs = static_slabs(extent, threads)
        assert len(slabs) == threads
        sizes = partition_sizes(slabs)
        assert sizes.sum() == extent
        assert sizes.max() - sizes.min() <= 1
        # contiguous and ordered
        pos = 0
        for s in slabs:
            assert s.start == pos
            pos = s.stop
        assert pos == extent

    def test_paper_input_on_32_threads(self):
        """The 124-plane grid on 32 threads: 28 slabs of 4, 4 of 3."""
        sizes = partition_sizes(static_slabs(124, 32))
        assert sorted(set(sizes.tolist())) == [3, 4]
        assert (sizes == 4).sum() == 28

    def test_threads_exceed_extent(self):
        slabs = static_slabs(2, 4)
        sizes = partition_sizes(slabs)
        assert sizes.tolist() == [1, 1, 0, 0]

    def test_rejects_bad_args(self):
        with pytest.raises(PartitionError):
            static_slabs(0, 4)
        with pytest.raises(PartitionError):
            static_slabs(4, 0)


class TestChunkedRanges:
    def test_covers_extent(self):
        chunks = chunked_ranges(10, 3)
        assert [c.size for c in chunks] == [3, 3, 3, 1]
        assert chunks[0].start == 0 and chunks[-1].stop == 10

    def test_rejects_bad_chunk(self):
        with pytest.raises(PartitionError):
            chunked_ranges(10, 0)


class TestSlab:
    def test_indices(self):
        s = Slab(3, 7)
        np.testing.assert_array_equal(s.indices(), [3, 4, 5, 6])
        assert s.size == 4
