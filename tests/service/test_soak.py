"""Stress/soak: hundreds of jobs, random cancels, a mid-run kill/resume.

The full soak (``slow``-marked) pushes 200+ short jobs through the
service across multiple tenants with seeded random cancellations and
one hard kill mid-batch, then asserts the service invariant:

* every accepted job reaches a terminal state — never lost, never stuck;
* every *completed* job's final state is bit-identical
  (``max_abs_delta == 0.0``, digest equality) to the same config's solo
  sequential run.

A quick smoke variant runs the same machinery at ~1/10 scale for the
default test pass.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.api import Simulation
from repro.batch.scheduler import TERMINAL_STATUSES
from repro.config import SimulationConfig
from repro.observe import Telemetry
from repro.resilience import FaultInjector, service_plan
from repro.service import SimulationService, TenantSpec
from repro.verify.golden import fields_digest, state_arrays
from repro.verify.oracle import seeded_initial_fluid

pytestmark = pytest.mark.service

CFG = SimulationConfig(fluid_shape=(8, 8, 8), solver="batched")
TENANTS = [
    TenantSpec("alpha", weight=1, max_depth=1000),
    TenantSpec("beta", weight=2, max_depth=1000),
    TenantSpec("gamma", weight=3, max_depth=1000),
]


def _solo_state(seed: int, steps: int):
    sim = Simulation(CFG, initial_fluid=seeded_initial_fluid(CFG, seed))
    sim.run(steps)
    return sim.fluid, sim.structure


def _run_soak(
    tmp_path,
    num_jobs: int,
    kill_at_step: int | None,
    cancel_fraction: float,
    seed: int,
) -> None:
    rng = np.random.default_rng(seed)
    telemetry = Telemetry()
    injector = None
    if kill_at_step is not None:
        injector = FaultInjector(
            service_plan(num_steps=2 * kill_at_step, seed=seed)
        )

    async def main():
        async with SimulationService(
            tmp_path,
            tenants=TENANTS,
            max_batch=6,
            telemetry=telemetry,
            fault_injector=injector,
            checkpoint_every=2,
            resume_on_kill=True,
            memory_budget_bytes=1 << 32,
        ) as service:
            plan = []  # (job_id, seed, steps, cancel_requested)
            for index in range(num_jobs):
                job_seed = int(rng.integers(0, 2**31))
                steps = int(rng.integers(2, 6))
                tenant = str(rng.choice(["alpha", "beta", "gamma"]))
                job_id = service.submit(
                    CFG, steps, tenant=tenant, state_seed=job_seed
                )
                cancel = bool(rng.random() < cancel_fraction)
                plan.append((job_id, job_seed, steps, cancel))
                if cancel:
                    service.cancel(job_id)
                if index % 16 == 7:
                    await asyncio.sleep(0)  # interleave with the drive loop
            results = {}
            for job_id, *_ in plan:
                results[job_id] = await service.result(job_id)
            return plan, results

    plan, results = asyncio.run(main())

    # Invariant 1: every accepted job is terminal.
    assert len(results) == num_jobs
    for job_id, result in results.items():
        assert result is not None, f"{job_id} lost"
        assert result.status in TERMINAL_STATUSES

    # Invariant 2: completed results are bit-identical to solo runs.
    completed = cancelled = 0
    for job_id, job_seed, steps, cancel in plan:
        result = results[job_id]
        if result.status == "cancelled":
            cancelled += 1
            continue
        assert result.ok, f"{job_id}: unexpected status {result.status}"
        completed += 1
        assert result.steps_completed == steps
        fluid, structure = _solo_state(job_seed, steps)
        assert fields_digest(result.fluid, result.structure) == fields_digest(
            fluid, structure
        )
        ours = state_arrays(result.fluid, result.structure)
        theirs = state_arrays(fluid, structure)
        max_abs_delta = max(
            float(np.max(np.abs(ours[key] - theirs[key]), initial=0.0))
            for key in ours
        )
        assert max_abs_delta == 0.0
    assert completed > 0

    snap = telemetry.metrics.snapshot()
    assert snap["counters"]["service.accepted"] == num_jobs
    assert snap["counters"]["service.completed"] == completed
    assert snap["quantiles"]["service.step_seconds"]["count"] > 0
    if kill_at_step is not None:
        assert snap["counters"].get("service.kills_survived", 0) >= 1


def test_soak_smoke(tmp_path):
    """Quick variant: 24 jobs, a kill, ~15% cancels."""
    _run_soak(
        tmp_path, num_jobs=24, kill_at_step=2, cancel_fraction=0.15, seed=11
    )


@pytest.mark.slow
def test_soak_full(tmp_path):
    """Full soak: 220 jobs, a kill mid-batch, ~10% random cancels."""
    _run_soak(
        tmp_path, num_jobs=220, kill_at_step=3, cancel_fraction=0.10, seed=20150715
    )


@pytest.mark.slow
def test_soak_no_faults_all_complete(tmp_path):
    """Control soak: no kill, no cancels — every job completes."""
    _run_soak(tmp_path, num_jobs=64, kill_at_step=None, cancel_fraction=0.0, seed=3)
