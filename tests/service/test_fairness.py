"""Property-based weighted-fairness tests for the service queues.

Seeded random submission schedules across 2-4 tenants, asserting the
two SFQ guarantees on :class:`repro.service.queues.WeightedFairQueues`:

* **weighted share bound** — over any prefix of a fully-backlogged
  drain, each tenant's serve count stays within a small constant of
  its weighted share ``K * w_i / W``;
* **no starvation** — a backlogged tenant is served at least every
  ``ceil(W / w_i) + n`` pops.

Failing schedules greedily shrink to a minimal reproduction via the
same pattern as :func:`repro.verify.generate.shrink_case`.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, replace
from typing import Callable, Iterator

import numpy as np
import pytest

from repro.batch.scheduler import JobRequest
from repro.config import SimulationConfig
from repro.service.queues import PendingJob, TenantSpec, WeightedFairQueues

pytestmark = pytest.mark.service

#: Seeded schedules checked by the property tests (ISSUE floor: >= 20).
NUM_SCHEDULES = 24

_CFG = SimulationConfig(fluid_shape=(8, 8, 8), solver="batched")
_REQ = JobRequest(config=_CFG, num_steps=1)

#: Allowed deviation from the exact weighted share while backlogged.
SHARE_SLACK = 2.0


# ----------------------------------------------------------------------
# schedule cases: generation + greedy shrinking
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScheduleCase:
    """One random submission schedule: pure data, shrinkable."""

    weights: tuple[float, ...] = (1.0, 3.0)
    jobs_per_tenant: tuple[int, ...] = (8, 8)
    #: Interleave pattern seed for the dynamic-arrival test.
    seed: int = 0

    @property
    def num_tenants(self) -> int:
        return len(self.weights)

    def specs(self) -> list[TenantSpec]:
        return [
            TenantSpec(f"t{i}", weight=w, max_depth=10_000)
            for i, w in enumerate(self.weights)
        ]

    def describe(self) -> str:
        return (
            f"weights={self.weights} jobs={self.jobs_per_tenant} "
            f"seed={self.seed}"
        )


def random_schedule(rng: np.random.Generator) -> ScheduleCase:
    """Draw one schedule: 2-4 tenants, varied weights and backlog sizes."""
    n = int(rng.integers(2, 5))
    return ScheduleCase(
        weights=tuple(float(rng.choice([1, 2, 3, 5])) for _ in range(n)),
        jobs_per_tenant=tuple(int(rng.integers(4, 24)) for _ in range(n)),
        seed=int(rng.integers(0, 2**31)),
    )


def generate_schedules(seed: int, count: int) -> list[ScheduleCase]:
    rng = np.random.default_rng(seed)
    return [random_schedule(rng) for _ in range(count)]


def _simplifications(case: ScheduleCase) -> Iterator[ScheduleCase]:
    """Candidate one-step simplifications, most aggressive first."""
    if case.num_tenants > 2:
        yield replace(
            case,
            weights=case.weights[:2],
            jobs_per_tenant=case.jobs_per_tenant[:2],
        )
    if any(j > 4 for j in case.jobs_per_tenant):
        yield replace(
            case, jobs_per_tenant=tuple(min(j, 4) for j in case.jobs_per_tenant)
        )
    if any(w != 1.0 for w in case.weights):
        yield replace(case, weights=tuple(1.0 for _ in case.weights))
    if case.seed != 0:
        yield replace(case, seed=0)


def shrink_schedule(
    case: ScheduleCase,
    still_fails: Callable[[ScheduleCase], bool],
    max_attempts: int = 64,
) -> ScheduleCase:
    """Greedy shrink: keep any simplification that still fails."""
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _simplifications(case):
            attempts += 1
            if attempts > max_attempts:
                break
            try:
                reproduced = still_fails(candidate)
            except Exception:
                reproduced = False
            if reproduced:
                case = candidate
                improved = True
                break
    return case


def _check_and_shrink(case: ScheduleCase, violation: Callable[[ScheduleCase], str | None]):
    """Assert no violation; on failure shrink first, then report both."""
    message = violation(case)
    if message is None:
        return
    minimal = shrink_schedule(case, lambda c: violation(c) is not None)
    pytest.fail(
        f"fairness violation: {message}\n"
        f"  original: {case.describe()}\n"
        f"  shrunk:   {minimal.describe()} -> {violation(minimal)}"
    )


# ----------------------------------------------------------------------
# the properties
# ----------------------------------------------------------------------
def _fill(queues: WeightedFairQueues, case: ScheduleCase) -> int:
    total = 0
    for i, count in enumerate(case.jobs_per_tenant):
        for j in range(count):
            queues.push(
                PendingJob(
                    job_id=f"t{i}-{j}",
                    tenant=f"t{i}",
                    request=_REQ,
                    state_bytes=0,
                )
            )
            total += 1
    return total


def _share_violation(case: ScheduleCase) -> str | None:
    """Weighted-share bound over every fully-backlogged prefix."""
    queues = WeightedFairQueues(case.specs())
    total = _fill(queues, case)
    weight_sum = sum(case.weights)
    served = [0] * case.num_tenants
    remaining = list(case.jobs_per_tenant)
    for k in range(1, total + 1):
        job = queues.pop_next()
        assert job is not None
        tenant = int(job.tenant[1:])
        served[tenant] += 1
        remaining[tenant] -= 1
        if min(remaining) <= 0:
            break  # some tenant drained: shares only bind while backlogged
        for i in range(case.num_tenants):
            expected = k * case.weights[i] / weight_sum
            if abs(served[i] - expected) > SHARE_SLACK:
                return (
                    f"after {k} pops tenant t{i} (w={case.weights[i]}) was "
                    f"served {served[i]}x, expected {expected:.2f} +/- "
                    f"{SHARE_SLACK}"
                )
    return None


def _starvation_violation(case: ScheduleCase) -> str | None:
    """No backlogged tenant waits more than ``ceil(W/w) + n`` pops."""
    queues = WeightedFairQueues(case.specs())
    total = _fill(queues, case)
    weight_sum = sum(case.weights)
    last_served = [0] * case.num_tenants
    remaining = list(case.jobs_per_tenant)
    for k in range(1, total + 1):
        job = queues.pop_next()
        assert job is not None
        tenant = int(job.tenant[1:])
        remaining[tenant] -= 1
        last_served[tenant] = k
        for i in range(case.num_tenants):
            if remaining[i] <= 0:
                last_served[i] = k  # drained tenants cannot starve
                continue
            bound = math.ceil(weight_sum / case.weights[i]) + case.num_tenants
            if k - last_served[i] > bound:
                return (
                    f"tenant t{i} (w={case.weights[i]}) waited "
                    f"{k - last_served[i]} pops (> {bound}) while backlogged"
                )
    return None


def _dynamic_violation(case: ScheduleCase) -> str | None:
    """Random arrival interleave: exactly-once service, FIFO per tenant.

    Also exercises the vtime catch-up: tenants arrive and drain at
    random times, and an idle period must never bank credit that lets
    the returning tenant monopolize the queue (checked through the
    same starvation bound over the backlogged intervals).
    """
    rng = np.random.default_rng(case.seed)
    queues = WeightedFairQueues(case.specs())
    pending = [
        (i, j) for i, count in enumerate(case.jobs_per_tenant) for j in range(count)
    ]
    rng.shuffle(pending)
    served: list[str] = []
    submitted: set[str] = set()
    while pending or queues.depth() > 0:
        if pending and (queues.depth() == 0 or rng.random() < 0.5):
            i, j = pending.pop()
            job_id = f"t{i}-{j}"
            queues.push(
                PendingJob(job_id=job_id, tenant=f"t{i}", request=_REQ, state_bytes=0)
            )
            submitted.add(job_id)
        else:
            job = queues.pop_next()
            if job is None:
                continue
            served.append(job.job_id)
    if len(served) != len(submitted) or set(served) != submitted:
        return f"served {len(served)} of {len(submitted)} submitted jobs"
    # FIFO within each tenant: pushed ascending per tenant id after the
    # shuffle?  No — arrival order is the shuffle order, so check serve
    # order matches each tenant's own arrival order.
    arrival: dict[str, list[str]] = {}
    rng2 = np.random.default_rng(case.seed)
    pending2 = [
        (i, j) for i, count in enumerate(case.jobs_per_tenant) for j in range(count)
    ]
    rng2.shuffle(pending2)
    order = [f"t{i}-{j}" for i, j in reversed(pending2)]
    for job_id in order:
        arrival.setdefault(job_id.split("-")[0], []).append(job_id)
    for tenant, expect in arrival.items():
        got = [job_id for job_id in served if job_id.startswith(tenant + "-")]
        if got != expect:
            return f"tenant {tenant} served out of arrival order"
    return None


@pytest.mark.parametrize(
    "case",
    generate_schedules(seed=20150715, count=NUM_SCHEDULES),
    ids=lambda c: c.describe(),
)
class TestWeightedFairness:
    def test_weighted_share_bound(self, case):
        _check_and_shrink(case, _share_violation)

    def test_no_starvation(self, case):
        _check_and_shrink(case, _starvation_violation)

    def test_dynamic_arrivals_exactly_once_fifo(self, case):
        _check_and_shrink(case, _dynamic_violation)


# ----------------------------------------------------------------------
# fairness through the real service
# ----------------------------------------------------------------------
def test_service_dispatches_in_weighted_fair_order(tmp_path):
    """End to end: a weight-3 tenant gets ~3x the early dispatch slots.

    ``max_batch=1`` serializes dispatch, so the scheduler's admission
    order is exactly the fair queues' pop order; the journal's
    ``job_dispatched`` sequence is then the observable serve order.
    """
    from repro.resilience.incident import IncidentLog
    from repro.service import SimulationService, TenantSpec

    config = SimulationConfig(fluid_shape=(8, 8, 8), solver="batched")

    async def main():
        service = SimulationService(
            tmp_path,
            tenants=[TenantSpec("lo", weight=1), TenantSpec("hi", weight=3)],
            max_batch=1,
        )
        ids = []
        for i in range(4):
            ids.append(service.submit(config, 2, tenant="lo", state_seed=i))
            ids.append(service.submit(config, 2, tenant="hi", state_seed=10 + i))
        async with service:
            for job_id in ids:
                result = await service.result(job_id)
                assert result.status == "completed"
        return service

    service = asyncio.run(main())
    dispatched = [
        event.detail["job"]
        for event in IncidentLog.load(service._journal.path).events
        if event.kind == "job_dispatched"
    ]
    assert len(dispatched) == 8
    tenants = [
        service._records[job_id].tenant for job_id in dispatched
    ]
    # Among the first four serves, the weight-3 tenant gets three.
    assert tenants[:4].count("hi") == 3
    assert tenants[:4].count("lo") == 1
