"""Service kill/restart chaos: a dead process loses nothing.

Unlike the in-process ``resume_on_kill=True`` path (exercised by the
soak tests), this scenario models a real process death: the first
service instance runs with ``resume_on_kill=False``, so the injected
``kill_worker`` stops it mid-batch with jobs in every lifecycle stage —
some completed, some mid-flight in batch slots, some accepted but never
dispatched.  A *second* instance is then rebuilt from the same workdir
via :meth:`SimulationService.resume` and must finish every job with
results bit-identical to solo runs.

Set ``LBMIB_SERVICE_DIR`` to keep the service journal and scheduler
manifest for inspection (CI archives them on failure).
"""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.api import Simulation
from repro.batch.scheduler import TERMINAL_STATUSES
from repro.config import SimulationConfig
from repro.errors import WorkerKilledError
from repro.observe import Telemetry
from repro.resilience import FaultInjector, service_plan
from repro.service import ServiceJournal, SimulationService, TenantSpec
from repro.verify.golden import fields_digest
from repro.verify.oracle import seeded_initial_fluid

pytestmark = [pytest.mark.service, pytest.mark.chaos]

CFG = SimulationConfig(fluid_shape=(8, 8, 8), solver="batched")
NUM_JOBS = 8
NUM_STEPS = 8


@pytest.fixture
def service_dir(tmp_path):
    """Honor LBMIB_SERVICE_DIR so CI can archive the journal on failure."""
    keep = os.environ.get("LBMIB_SERVICE_DIR")
    if keep:
        os.makedirs(keep, exist_ok=True)
        return keep
    return tmp_path


def _solo_digest(seed: int) -> str:
    sim = Simulation(CFG, initial_fluid=seeded_initial_fluid(CFG, seed))
    sim.run(NUM_STEPS)
    return fields_digest(sim.fluid, sim.structure)


def test_service_survives_hard_kill_and_restart(service_dir):
    injector = FaultInjector(service_plan(num_steps=NUM_STEPS, seed=99))

    async def first_instance():
        service = SimulationService(
            service_dir,
            tenants=[TenantSpec("t", max_depth=100)],
            max_batch=2,  # keep several jobs queued when the kill lands
            fault_injector=injector,
            checkpoint_every=2,
            resume_on_kill=False,
        )
        await service.start()
        ids = [
            service.submit(CFG, NUM_STEPS, tenant="t", state_seed=seed)
            for seed in range(NUM_JOBS)
        ]
        # Wait for the injected kill to take the service down.
        while service._fatal is None:
            await asyncio.sleep(0.01)
        await service.stop(drain=False)
        assert isinstance(service._fatal, WorkerKilledError)
        # The kill must strand work: not every job reached terminal.
        stranded = [
            s for s in service.jobs() if s.status not in TERMINAL_STATUSES
        ]
        assert stranded, "kill landed too late to exercise recovery"
        return ids

    ids = asyncio.run(first_instance())

    # The journal alone knows every accepted job.
    replay = ServiceJournal.replay(service_dir)
    assert sorted(replay.accepted) == sorted(ids)

    async def second_instance():
        telemetry = Telemetry()
        revived = SimulationService.resume(
            service_dir,
            tenants=[TenantSpec("t", max_depth=100)],
            max_batch=2,
            fault_injector=injector,  # fired set rides along: no re-kill
            checkpoint_every=2,
            telemetry=telemetry,
        )
        assert sorted(s.job_id for s in revived.jobs()) == sorted(ids)
        async with revived:
            results = {job_id: await revived.result(job_id) for job_id in ids}
        return results, telemetry

    results, telemetry = asyncio.run(second_instance())

    # Every accepted job is terminal and bit-identical to its solo run.
    assert len(results) == NUM_JOBS
    for seed, job_id in enumerate(ids):
        result = results[job_id]
        assert result.status == "completed", f"{job_id}: {result.status}"
        assert result.steps_completed == NUM_STEPS
        assert fields_digest(result.fluid, result.structure) == _solo_digest(seed)

    counters = telemetry.metrics.snapshot()["counters"]
    assert counters["service.resumes"] == 1
