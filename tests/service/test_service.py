"""Service lifecycle tests: submit/poll/stream/result, metrics, recovery.

The bit-identity acceptance bar rides along: a job completed through
the service (batched, continuously refilled, possibly killed and
resumed) must produce exactly the final state of the same config's
solo sequential run — digest equality and ``max_abs_delta == 0.0``.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.api import Simulation
from repro.config import SimulationConfig, StructureConfig
from repro.observe import Telemetry
from repro.resilience import FaultInjector, service_plan
from repro.service import SimulationService, TenantSpec
from repro.verify.golden import fields_digest, state_arrays
from repro.verify.oracle import seeded_initial_fluid

pytestmark = pytest.mark.service

CFG = SimulationConfig(fluid_shape=(8, 8, 8), solver="batched")
IB_CFG = SimulationConfig(
    fluid_shape=(8, 8, 8),
    solver="batched",
    structure=StructureConfig(kind="flat_sheet", num_fibers=4, nodes_per_fiber=4),
)


def _solo_digest(config: SimulationConfig, seed: int, steps: int) -> str:
    sim = Simulation(config, initial_fluid=seeded_initial_fluid(config, seed))
    sim.run(steps)
    return fields_digest(sim.fluid, sim.structure)


def _max_abs_delta(result, config: SimulationConfig, seed: int, steps: int) -> float:
    sim = Simulation(config, initial_fluid=seeded_initial_fluid(config, seed))
    sim.run(steps)
    ours = state_arrays(result.fluid, result.structure)
    theirs = state_arrays(sim.fluid, sim.structure)
    assert sorted(ours) == sorted(theirs)
    return max(
        float(np.max(np.abs(ours[key] - theirs[key]), initial=0.0)) for key in ours
    )


class TestLifecycle:
    def test_submit_poll_result_roundtrip(self, tmp_path):
        async def main():
            async with SimulationService(tmp_path, max_batch=4) as service:
                job_id = service.submit(CFG, 4, state_seed=7)
                assert service.poll(job_id).status in ("queued", "running")
                result = await service.result(job_id)
                assert result.ok
                snapshot = service.poll(job_id)
                assert snapshot.status == "completed"
                assert snapshot.terminal
                assert snapshot.steps_completed == 4
                assert snapshot.progress == 1.0

        asyncio.run(main())

    def test_results_bit_identical_to_solo_runs(self, tmp_path):
        async def main():
            async with SimulationService(tmp_path, max_batch=3) as service:
                ids = {
                    service.submit(IB_CFG, 4, state_seed=seed): seed
                    for seed in range(5)
                }
                return {
                    seed: await service.result(job_id)
                    for job_id, seed in ids.items()
                }

        results = asyncio.run(main())
        for seed, result in results.items():
            assert result.ok
            assert fields_digest(result.fluid, result.structure) == _solo_digest(
                IB_CFG, seed, 4
            )
            assert _max_abs_delta(result, IB_CFG, seed, 4) == 0.0

    def test_stream_yields_progress_then_result(self, tmp_path):
        async def main():
            async with SimulationService(tmp_path) as service:
                job_id = service.submit(CFG, 5, state_seed=1)
                events = []
                async for event in service.stream(job_id):
                    events.append(event)
                return job_id, events

        job_id, events = asyncio.run(main())
        assert events[-1]["type"] == "result"
        assert events[-1]["result"].ok
        progress = [e for e in events if e["type"] == "progress"]
        assert progress, "expected at least one progress event"
        steps = [e["steps_completed"] for e in progress]
        assert steps == sorted(steps)
        assert all(e["job_id"] == job_id for e in events)

    def test_stream_on_finished_job_yields_result_immediately(self, tmp_path):
        async def main():
            async with SimulationService(tmp_path) as service:
                job_id = service.submit(CFG, 2, state_seed=0)
                await service.result(job_id)
                events = [event async for event in service.stream(job_id)]
                assert len(events) == 1
                assert events[0]["type"] == "result"

        asyncio.run(main())

    def test_mixed_compatibility_groups_all_complete(self, tmp_path):
        other = SimulationConfig(fluid_shape=(6, 6, 6), solver="batched")

        async def main():
            async with SimulationService(tmp_path, max_batch=4) as service:
                a = [service.submit(CFG, 3, state_seed=i) for i in range(3)]
                b = [service.submit(other, 3, state_seed=i) for i in range(3)]
                for job_id in a + b:
                    assert (await service.result(job_id)).ok

        asyncio.run(main())


class TestSLOMetrics:
    def test_metrics_populated_through_observe(self, tmp_path):
        telemetry = Telemetry()

        async def main():
            async with SimulationService(
                tmp_path, max_batch=2, telemetry=telemetry
            ) as service:
                ids = [service.submit(CFG, 3, state_seed=i) for i in range(3)]
                for job_id in ids:
                    assert (await service.result(job_id)).ok

        asyncio.run(main())
        snap = telemetry.metrics.snapshot()
        assert snap["counters"]["service.accepted"] == 3
        assert snap["counters"]["service.completed"] == 3
        latency = snap["histograms"]["service.queue_latency_seconds"]
        assert latency["count"] == 3
        assert latency["min"] >= 0.0
        steps = snap["quantiles"]["service.step_seconds"]
        assert steps["count"] >= 9  # 3 jobs x 3 steps, batched
        assert steps["p99"] is not None and steps["p99"] > 0.0
        assert steps["p50"] <= steps["p99"]
        assert "service.slot_occupancy" in snap["gauges"]
        assert snap["gauges"]["service.slot_capacity"] >= 1.0
        # The drive loop is spanned through the tracer.
        assert any(s.name == "service.drive" for s in telemetry.tracer.spans)

    def test_rejections_counted(self, tmp_path):
        telemetry = Telemetry()
        service = SimulationService(
            tmp_path,
            telemetry=telemetry,
            tenants=[TenantSpec("t", max_depth=1)],
        )
        service.submit(CFG, 2, tenant="t")
        from repro.errors import QueueFullError

        with pytest.raises(QueueFullError):
            service.submit(CFG, 2, tenant="t")
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["service.accepted"] == 1
        assert counters["service.rejected"] == 1


class TestRecovery:
    def test_in_process_kill_resume_is_transparent(self, tmp_path):
        telemetry = Telemetry()
        injector = FaultInjector(service_plan(num_steps=8))

        async def main():
            async with SimulationService(
                tmp_path,
                max_batch=3,
                telemetry=telemetry,
                fault_injector=injector,
                checkpoint_every=2,
                resume_on_kill=True,
            ) as service:
                ids = {
                    service.submit(CFG, 8, state_seed=seed): seed
                    for seed in range(4)
                }
                return {
                    seed: await service.result(job_id)
                    for job_id, seed in ids.items()
                }

        results = asyncio.run(main())
        for seed, result in results.items():
            assert result.ok
            assert fields_digest(result.fluid, result.structure) == _solo_digest(
                CFG, seed, 8
            )
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["service.kills_survived"] == 1

    def test_cross_instance_resume_recovers_undispatched_jobs(self, tmp_path):
        """Jobs journaled but never dispatched survive a service death."""
        service = SimulationService(tmp_path)
        ids = [service.submit(CFG, 3, state_seed=seed) for seed in range(3)]
        # The service dies without ever starting its drive loop; the
        # journal alone must reconstruct the accepted jobs.
        service._journal.close()

        async def main():
            revived = SimulationService.resume(tmp_path)
            assert sorted(r.job_id for r in revived.jobs()) == sorted(ids)
            async with revived:
                return [await revived.result(job_id) for job_id in ids]

        results = asyncio.run(main())
        for seed, result in zip(range(3), results):
            assert result.ok
            assert fields_digest(result.fluid, result.structure) == _solo_digest(
                CFG, seed, 3
            )

    def test_resume_preserves_terminal_statuses(self, tmp_path):
        async def main():
            async with SimulationService(tmp_path) as service:
                done = service.submit(CFG, 2, state_seed=0)
                gone = service.submit(CFG, 2, state_seed=1)
                service.cancel(gone)
                await service.result(done)
                await service.result(gone)
            return done, gone

        done, gone = asyncio.run(main())
        revived = SimulationService.resume(tmp_path)
        assert revived.poll(done).status == "completed"
        assert revived.poll(gone).status == "cancelled"

    def test_resume_reissues_unpersisted_cancel(self, tmp_path):
        """Regression: a kill after cancel() journals the acknowledgement
        but before the scheduler persists "cancelled" must not let the
        job run to completion after resume."""
        service = SimulationService(tmp_path)
        job_id = service.submit(CFG, 4, state_seed=0)
        # Hand the job to the scheduler without running it, then journal
        # the cancel acknowledgement without the scheduler seeing it —
        # exactly the state an ill-timed kill inside cancel() leaves.
        service._dispatch(service._queues.pop_next())
        service._journal.job_cancelled(job_id, queued=False)
        service._journal.close()

        async def main():
            revived = SimulationService.resume(tmp_path)
            async with revived:
                return await revived.result(job_id)

        result = asyncio.run(main())
        assert result.status == "cancelled"

    def test_restored_terminal_results_preserve_steps_and_seeded_state(
        self, tmp_path
    ):
        """Regression: resume() fabricating a terminal result from the
        journal alone must keep the journaled step count and rebuild the
        seeded initial fluid — not a rest state with steps=0 — and
        stream() must never yield ``result=None``."""
        import shutil

        async def main():
            async with SimulationService(tmp_path) as service:
                job_id = service.submit(CFG, 3, state_seed=5)
                await service.result(job_id)
            return job_id

        job_id = asyncio.run(main())
        # The batch scheduler's manifest is lost; only the service
        # journal survives to reconstruct the terminal record.
        shutil.rmtree(tmp_path / "batch")
        revived = SimulationService.resume(tmp_path)
        snapshot = revived.poll(job_id)
        assert snapshot.status == "completed"
        assert snapshot.steps_completed == 3

        async def stream_one():
            async with revived:
                events = []
                async for event in revived.stream(job_id):
                    events.append(event)
                return events, await revived.result(job_id)

        events, result = asyncio.run(stream_one())
        assert events[-1]["type"] == "result"
        assert events[-1]["result"] is not None
        assert result is not None
        assert result.steps_completed == 3
        seeded = seeded_initial_fluid(CFG, 5)
        assert np.array_equal(result.fluid.df, seeded.df)

    def test_cancel_wins_refill_handoff_race(self, tmp_path):
        """Regression: cancel() arriving between _refill_source's pop
        and the scheduler registering the submit must cancel the live
        job, not return False."""
        import threading
        import time

        service = SimulationService(tmp_path)
        job_id = service.submit(CFG, 4, state_seed=0)
        pending = service._queues.pop_next()  # the refill pop
        assert pending.job_id == job_id
        # Refills only happen inside scheduler.run(); mimic that window
        # so cancel() takes the deferred-request path, as it would live.
        service._scheduler._running = True

        def late_submit():
            time.sleep(0.05)
            service._scheduler.submit(
                pending.request.config,
                pending.request.num_steps,
                job_id=pending.job_id,
                initial_fluid=pending.request.initial_fluid,
            )

        thread = threading.Thread(target=late_submit)
        thread.start()
        try:
            assert service.cancel(job_id)
        finally:
            thread.join()
            service._scheduler._running = False
        # The deferred request retires the job before it runs a step.
        results = service._scheduler.run()
        assert results[job_id].status == "cancelled"
        assert results[job_id].steps_completed == 0
        service._journal.close()
