"""Backpressure and admission-control unit tests for the service.

Covers the satellite checklist: memory-budget rejection (retryable vs
permanent), retry-after honoring, queue-depth caps, and the
cancel-while-queued vs cancel-while-running paths.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.config import SimulationConfig
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    MemoryBudgetError,
    QueueFullError,
)
from repro.service import (
    MemoryBudget,
    SimulationService,
    TenantSpec,
    WeightedFairQueues,
)
from repro.service.queues import PendingJob
from repro.batch.scheduler import JobRequest

pytestmark = pytest.mark.service

CFG = SimulationConfig(fluid_shape=(8, 8, 8), solver="batched")


def _pending(job_id: str, tenant: str = "t") -> PendingJob:
    return PendingJob(
        job_id=job_id,
        tenant=tenant,
        request=JobRequest(config=CFG, num_steps=1),
        state_bytes=0,
    )


# ----------------------------------------------------------------------
# memory budget
# ----------------------------------------------------------------------
class TestMemoryBudget:
    def test_reserve_then_release_roundtrip(self):
        budget = MemoryBudget(1000)
        budget.reserve("a", 600)
        assert budget.reserved_bytes == 600
        assert budget.available_bytes == 400
        assert budget.release("a") == 600
        assert budget.available_bytes == 1000

    def test_overcommit_rejected_as_retryable(self):
        budget = MemoryBudget(1000, retry_after_seconds=2.5)
        budget.reserve("a", 700)
        with pytest.raises(MemoryBudgetError) as err:
            budget.reserve("b", 500)
        assert err.value.retryable
        assert err.value.retry_after_seconds == 2.5
        assert err.value.available_bytes == 300
        # Releasing frees headroom; the retry then succeeds.
        budget.release("a")
        budget.reserve("b", 500)

    def test_job_larger_than_budget_is_permanent(self):
        budget = MemoryBudget(1000)
        with pytest.raises(MemoryBudgetError) as err:
            budget.reserve("huge", 2000)
        assert not err.value.retryable
        assert err.value.retry_after_seconds is None

    def test_double_reservation_rejected(self):
        budget = MemoryBudget(1000)
        budget.reserve("a", 10)
        with pytest.raises(ConfigurationError):
            budget.reserve("a", 10)


# ----------------------------------------------------------------------
# queue depth caps
# ----------------------------------------------------------------------
class TestQueueDepthCap:
    def test_push_past_depth_cap_rejects_with_retry_after(self):
        queues = WeightedFairQueues(
            [TenantSpec("t", max_depth=2, retry_after_seconds=0.25)]
        )
        queues.push(_pending("a"))
        queues.push(_pending("b"))
        with pytest.raises(QueueFullError) as err:
            queues.push(_pending("c"))
        assert err.value.retryable
        assert err.value.retry_after_seconds == 0.25
        assert err.value.tenant == "t"
        assert err.value.depth == 2

    def test_caps_are_per_tenant(self):
        queues = WeightedFairQueues(
            [TenantSpec("small", max_depth=1), TenantSpec("big", max_depth=8)]
        )
        queues.push(_pending("a", "small"))
        with pytest.raises(QueueFullError):
            queues.push(_pending("b", "small"))
        # The other tenant is unaffected.
        queues.push(_pending("c", "big"))

    def test_pop_frees_depth_for_the_retry(self):
        queues = WeightedFairQueues([TenantSpec("t", max_depth=1)])
        queues.push(_pending("a"))
        with pytest.raises(QueueFullError):
            queues.push(_pending("b"))
        assert queues.pop_next().job_id == "a"
        queues.push(_pending("b"))  # retry-after honored: now admitted

    def test_reserved_slot_counts_toward_cap(self):
        queues = WeightedFairQueues([TenantSpec("t", max_depth=2)])
        queues.reserve_slot("t")
        queues.push(_pending("a"))
        # One real job + one reservation fill the depth-2 cap.
        with pytest.raises(QueueFullError) as err:
            queues.reserve_slot("t")
        assert err.value.depth == 2
        with pytest.raises(QueueFullError):
            queues.push(_pending("b"))
        # A reserved push consumes the claimed slot instead of the cap.
        queues.push(_pending("c"), reserved=True)
        assert queues.depth("t") == 2

    def test_released_slot_restores_capacity(self):
        queues = WeightedFairQueues([TenantSpec("t", max_depth=1)])
        queues.reserve_slot("t")
        with pytest.raises(QueueFullError):
            queues.push(_pending("a"))
        queues.release_slot("t")
        queues.push(_pending("a"))
        assert queues.depth("t") == 1


# ----------------------------------------------------------------------
# service-level admission
# ----------------------------------------------------------------------
class TestServiceAdmission:
    def test_memory_budget_rejection_and_retry_after(self, tmp_path):
        state_bytes = CFG.estimated_state_bytes()
        service = SimulationService(
            tmp_path, memory_budget_bytes=state_bytes + state_bytes // 2
        )
        service.submit(CFG, 2, state_seed=0)
        with pytest.raises(MemoryBudgetError) as err:
            service.submit(CFG, 2, state_seed=1)
        assert err.value.retryable
        assert err.value.retry_after_seconds is not None

    def test_oversized_job_permanently_rejected(self, tmp_path):
        service = SimulationService(tmp_path, memory_budget_bytes=1024)
        with pytest.raises(MemoryBudgetError) as err:
            service.submit(CFG, 2)
        assert not err.value.retryable

    def test_queue_full_surfaces_from_submit(self, tmp_path):
        service = SimulationService(
            tmp_path,
            tenants=[TenantSpec("t", max_depth=2, retry_after_seconds=0.5)],
        )
        service.submit(CFG, 2, tenant="t")
        service.submit(CFG, 2, tenant="t")
        with pytest.raises(QueueFullError) as err:
            service.submit(CFG, 2, tenant="t")
        assert err.value.retry_after_seconds == 0.5
        # The rejected submission reserved no budget.
        assert service._budget.reserved_bytes == 2 * CFG.estimated_state_bytes()

    def test_queue_full_rejection_is_not_journaled(self, tmp_path):
        """Regression: a queue-full rejection must not leave a durable
        job_accepted record — resume() would resurrect and execute a job
        the client was told to retry (phantom/duplicate execution)."""
        from repro.service.journal import ServiceJournal

        service = SimulationService(
            tmp_path, tenants=[TenantSpec("t", max_depth=1)]
        )
        kept = service.submit(CFG, 2, tenant="t", state_seed=0)
        with pytest.raises(QueueFullError):
            service.submit(CFG, 2, tenant="t", state_seed=1)
        replay = ServiceJournal.replay(tmp_path)
        assert list(replay.accepted) == [kept]
        # The failed reservation was returned: draining the queue makes
        # room for the retry, exactly as the retry-after hint promises.
        assert service._queues.pop_next().job_id == kept
        retried = service.submit(CFG, 2, tenant="t", state_seed=1)
        service._journal.close()
        revived = SimulationService.resume(tmp_path)
        assert sorted(r.job_id for r in revived.jobs()) == sorted([kept, retried])
        revived._journal.close()

    def test_unknown_tenant_rejected(self, tmp_path):
        service = SimulationService(tmp_path, tenants=[TenantSpec("a")])
        with pytest.raises(AdmissionError):
            service.submit(CFG, 2, tenant="nope")

    def test_rejection_after_drain_admits_again(self, tmp_path):
        state_bytes = CFG.estimated_state_bytes()

        async def main():
            async with SimulationService(
                tmp_path, memory_budget_bytes=state_bytes + state_bytes // 2
            ) as service:
                first = service.submit(CFG, 2, state_seed=0)
                with pytest.raises(MemoryBudgetError):
                    service.submit(CFG, 2, state_seed=1)
                assert (await service.result(first)).ok
                # Terminal jobs release their reservation: retry succeeds.
                second = service.submit(CFG, 2, state_seed=1)
                assert (await service.result(second)).ok

        asyncio.run(main())


# ----------------------------------------------------------------------
# cancellation paths
# ----------------------------------------------------------------------
class TestCancellation:
    def test_cancel_while_queued_before_loop_starts(self, tmp_path):
        service = SimulationService(tmp_path)
        job_id = service.submit(CFG, 4, state_seed=0)
        assert service.cancel(job_id)
        snapshot = service.poll(job_id)
        assert snapshot.status == "cancelled"
        assert service._budget.reserved_bytes == 0
        # Idempotent: a second cancel is a no-op.
        assert not service.cancel(job_id)

    def test_cancel_while_running_parks_the_slot(self, tmp_path):
        async def main():
            async with SimulationService(tmp_path, max_batch=2) as service:
                job_id = service.submit(CFG, 400, state_seed=0)
                sibling = service.submit(CFG, 4, state_seed=1)
                # Wait until the long job is actually running.
                while service.poll(job_id).status != "running":
                    await asyncio.sleep(0.005)
                assert service.cancel(job_id)
                result = await service.result(job_id)
                assert result.status == "cancelled"
                assert result.steps_completed < 400
                # The sibling keeps running to completion.
                assert (await service.result(sibling)).ok

        asyncio.run(main())

    def test_cancel_unknown_job_is_false(self, tmp_path):
        service = SimulationService(tmp_path)
        assert not service.cancel("never-submitted")

    def test_cancelled_while_queued_never_dispatches(self, tmp_path):
        from repro.resilience.incident import IncidentLog

        async def main():
            service = SimulationService(tmp_path, max_batch=1)
            keep = service.submit(CFG, 2, state_seed=0)
            drop = service.submit(CFG, 2, state_seed=1)
            assert service.cancel(drop)
            async with service:
                assert (await service.result(keep)).ok
                assert (await service.result(drop)).status == "cancelled"
            events = IncidentLog.load(service._journal.path).events
            dispatched = {
                e.detail["job"] for e in events if e.kind == "job_dispatched"
            }
            assert keep in dispatched
            assert drop not in dispatched

        asyncio.run(main())
