"""Tests of the high-level Simulation facade."""

import numpy as np
import pytest

from repro.api import BoundaryConfig, Simulation, SimulationConfig, StructureConfig


def _config(**overrides):
    defaults = dict(
        fluid_shape=(12, 8, 8),
        tau=0.8,
        structure=StructureConfig(kind="flat_sheet", num_fibers=4, nodes_per_fiber=4),
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestLifecycle:
    def test_run_and_time_step(self):
        with Simulation(_config()) as sim:
            sim.run(3)
            assert sim.time_step == 3
            sim.step()
            assert sim.time_step == 4

    def test_context_manager_closes(self):
        sim = Simulation(_config(solver="openmp", num_threads=2))
        with sim:
            sim.run(1)
        # close() already called; calling again is fine
        sim.close()

    @pytest.mark.parametrize("solver,threads", [("sequential", 1), ("openmp", 2), ("cube", 2)])
    def test_all_solver_variants_run(self, solver, threads):
        config = _config(solver=solver, num_threads=threads, cube_size=4)
        with Simulation(config) as sim:
            sim.run(2)
            assert sim.time_step == 2


class TestStateAccess:
    def test_fluid_property_sequential_is_live(self):
        with Simulation(_config()) as sim:
            assert sim.fluid is sim.fluid  # same object

    def test_fluid_property_cube_gathers(self):
        config = _config(solver="cube", num_threads=2, cube_size=4)
        with Simulation(config) as sim:
            sim.run(1)
            fluid = sim.fluid
            assert fluid.shape == config.fluid_shape

    def test_cube_gather_matches_sequential(self):
        seq = Simulation(_config())
        cub = Simulation(_config(solver="cube", num_threads=2, cube_size=4))
        for sim in (seq, cub):
            sim.structure.sheets[0].positions[1, 1, 0] += 0.5
            sim.run(4)
        assert seq.fluid.state_allclose(cub.fluid, rtol=1e-10, atol=1e-12)
        seq.close(), cub.close()

    def test_viscosity(self):
        with Simulation(_config(tau=0.8)) as sim:
            assert sim.viscosity == pytest.approx(0.1)

    def test_fiber_positions_are_copies(self):
        with Simulation(_config()) as sim:
            pos = sim.fiber_positions()[0]
            pos[...] = 0
            assert sim.structure.sheets[0].positions.any()

    def test_fluid_only_diagnostics(self):
        config = _config(structure=StructureConfig(kind="none"))
        with Simulation(config) as sim:
            sim.run(1)
            assert sim.fiber_positions() == []
            assert sim.structure_centroid() is None


class TestDiagnostics:
    def test_kinetic_energy_zero_at_rest(self):
        with Simulation(_config(structure=StructureConfig(kind="none"))) as sim:
            assert sim.kinetic_energy() == pytest.approx(0.0, abs=1e-20)

    def test_max_velocity_rises_with_flow(self):
        config = _config(
            structure=StructureConfig(kind="none"),
            external_force=(1e-4, 0.0, 0.0),
        )
        with Simulation(config) as sim:
            sim.run(5)
            assert sim.max_velocity() > 0

    def test_vorticity_shape(self):
        with Simulation(_config()) as sim:
            assert sim.vorticity().shape == (3, 12, 8, 8)

    def test_structure_centroid(self):
        with Simulation(_config()) as sim:
            c = sim.structure_centroid()
            assert c.shape == (3,)


class TestBoundariesViaConfig:
    def test_channel_flow_runs(self):
        config = _config(
            boundaries=(
                BoundaryConfig("bounce_back", "y", "low"),
                BoundaryConfig("bounce_back", "y", "high"),
            ),
            external_force=(1e-5, 0.0, 0.0),
        )
        with Simulation(config) as sim:
            sim.run(5)
            assert sim.max_velocity() > 0


class TestAllSolverVariants:
    """The facade exposes all six solver programs with identical physics."""

    VARIANTS = ["sequential", "openmp", "cube", "async_cube", "distributed", "hybrid"]

    def _run_variant(self, solver):
        config = SimulationConfig(
            fluid_shape=(16, 8, 8),
            solver=solver,
            num_threads=2,
            cube_size=4,
            structure=StructureConfig(
                kind="flat_sheet", num_fibers=4, nodes_per_fiber=4
            ),
        )
        with Simulation(config) as sim:
            sim.structure.sheets[0].positions[1, 1, 0] += 0.5
            sim.run(4)
            return sim.fluid, sim.structure.sheets[0].positions.copy()

    @pytest.mark.parametrize(
        "solver", ["openmp", "cube", "async_cube", "distributed", "hybrid"]
    )
    def test_variant_matches_sequential(self, solver):
        ref_fluid, ref_pos = self._run_variant("sequential")
        fluid, pos = self._run_variant(solver)
        assert ref_fluid.state_allclose(fluid, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(pos, ref_pos, rtol=1e-10, atol=1e-12)

    def test_unknown_variant_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            SimulationConfig(solver="gpu")

    def test_distributed_time_step_before_run(self):
        config = SimulationConfig(
            fluid_shape=(16, 8, 8),
            solver="distributed",
            num_threads=2,
            structure=StructureConfig(kind="none"),
        )
        with Simulation(config) as sim:
            assert sim.time_step == 0
            sim.run(2)
            assert sim.time_step == 2

    def test_hybrid_requires_divisible_grid(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="divisible"):
            SimulationConfig(fluid_shape=(10, 8, 8), solver="hybrid", cube_size=4)
