"""Shared fixtures for the LBM-IB test suite."""

from __future__ import annotations

import os
import signal
import threading

import numpy as np
import pytest

from repro.core.ib.delta import CosineDelta
from repro.core.ib.fiber import FiberSheet, ImmersedStructure
from repro.core.lbm.fields import FluidGrid

#: Hard wall-clock deadline for each ``faults``-marked test.  The fault
#: suite deliberately kills workers and drops messages; if a regression
#: reintroduces an untimed wait, the alarm turns the would-be CI hang
#: into an ordinary test failure.
FAULT_TEST_TIMEOUT = float(os.environ.get("LBMIB_FAULT_TEST_TIMEOUT", "120"))


@pytest.fixture(autouse=True)
def _fault_test_deadline(request):
    """Arm a SIGALRM watchdog around every ``faults``/``chaos``/``service`` test."""
    if (
        request.node.get_closest_marker("faults") is None
        and request.node.get_closest_marker("chaos") is None
        and request.node.get_closest_marker("service") is None
    ):
        yield
        return
    if (
        not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield  # platform without alarms: rely on the library deadlines
        return

    def _on_alarm(signum, frame):
        raise TimeoutError(
            f"fault-injection test exceeded the {FAULT_TEST_TIMEOUT:g}s hard "
            "deadline — a watchdog path is missing and the test deadlocked"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, FAULT_TEST_TIMEOUT)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator."""
    return np.random.default_rng(20150715)  # ICPP 2015


@pytest.fixture
def small_grid() -> FluidGrid:
    """An 8x6x4 fluid grid at tau = 0.8."""
    return FluidGrid((8, 6, 4), tau=0.8)


@pytest.fixture
def randomized_grid(rng) -> FluidGrid:
    """A small grid with a perturbed, physically sane state.

    Density near 1, small velocities; both buffers set to the
    equilibrium of that state so all invariants hold.
    """
    grid = FluidGrid((8, 6, 4), tau=0.8)
    density = 1.0 + 0.02 * rng.standard_normal(grid.shape)
    velocity = 0.02 * rng.standard_normal((3,) + grid.shape)
    grid.initialize_equilibrium(density=density, velocity=velocity)
    grid.force[...] = 1e-4 * rng.standard_normal((3,) + grid.shape)
    return grid


@pytest.fixture
def small_sheet(rng) -> FiberSheet:
    """A 5x6 fiber sheet inside an 8x6x4-ish box, slightly perturbed."""
    base = np.zeros((5, 6, 3))
    base[..., 0] = 3.5
    base[..., 1] = 1.0 + 0.7 * np.arange(5)[:, None]
    base[..., 2] = 0.5 + 0.5 * np.arange(6)[None, :]
    positions = base + 0.05 * rng.standard_normal(base.shape)
    return FiberSheet(
        positions, stretch_coefficient=2e-2, bend_coefficient=5e-4
    )


@pytest.fixture
def small_structure(small_sheet) -> ImmersedStructure:
    """A one-sheet structure."""
    return ImmersedStructure([small_sheet])


@pytest.fixture
def cosine_delta() -> CosineDelta:
    """The paper's 4-point delta kernel."""
    return CosineDelta()
