"""Tests of the cube-size auto-tuner."""

import pytest

from repro.config import SimulationConfig, StructureConfig
from repro.errors import ConfigurationError
from repro.machine.spec import thog
from repro.tuning import (
    TuningResult,
    autotune_cube_size,
    suggest_cube_size,
    valid_cube_sizes,
)


class TestValidCubeSizes:
    def test_divisors_of_gcd(self):
        assert valid_cube_sizes((16, 8, 8)) == [1, 2, 4, 8]
        assert valid_cube_sizes((12, 8, 8)) == [1, 2, 4]

    def test_coprime_dims_only_unit(self):
        assert valid_cube_sizes((7, 5, 3)) == [1]

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            valid_cube_sizes((0, 4, 4))


class TestSuggest:
    def test_fits_l2_share(self):
        machine = thog()  # 2 MB L2 per 2 cores -> 1 MB budget
        k = suggest_cube_size((64, 64, 64), machine)
        # 48 doubles/node * k^3 <= 1 MB  ->  k <= 13.9 -> largest divisor 8
        assert k == 8

    def test_small_grid_limits_k(self):
        machine = thog()
        assert suggest_cube_size((4, 4, 4), machine) == 4

    def test_always_at_least_one(self):
        machine = thog()
        assert suggest_cube_size((3, 5, 7), machine) == 1


class TestAutotune:
    def _config(self):
        return SimulationConfig(
            fluid_shape=(8, 8, 8),
            structure=StructureConfig(kind="flat_sheet", num_fibers=4, nodes_per_fiber=4),
            num_threads=2,
        )

    def test_sweeps_all_candidates(self):
        result = autotune_cube_size(self._config(), candidates=[2, 4], steps=1)
        assert set(result.seconds_by_size) == {2, 4}
        assert result.best_cube_size in (2, 4)
        assert all(s > 0 for s in result.seconds_by_size.values())

    def test_default_candidates_skip_unit_and_infeasible(self):
        # k=8 would leave a single cube for two threads: silently skipped
        result = autotune_cube_size(self._config(), steps=1, warmup_steps=0)
        assert 1 not in result.seconds_by_size
        assert set(result.seconds_by_size) == {2, 4}

    def test_all_candidates_infeasible_raises(self):
        with pytest.raises(ConfigurationError, match="no feasible"):
            autotune_cube_size(self._config(), candidates=[8], steps=1)

    def test_rejects_indivisible_candidate(self):
        with pytest.raises(ConfigurationError, match="divide"):
            autotune_cube_size(self._config(), candidates=[3], steps=1)

    def test_rejects_zero_steps(self):
        with pytest.raises(ConfigurationError):
            autotune_cube_size(self._config(), candidates=[2], steps=0)

    def test_result_rows(self):
        result = TuningResult(best_cube_size=4, seconds_by_size={2: 0.5, 4: 0.25})
        rows = result.as_rows()
        assert rows == [[2, 0.5, ""], [4, 0.25, "*"]]
