"""The span tracer: export shape, nesting discipline, solver coverage.

Locks the observability tentpole's tracer guarantees:

* chrome-trace export is valid JSON with well-formed ``X`` events and
  per-thread spans that are disjoint or properly nested;
* a traced sequential run emits all nine Algorithm-1 kernels per step;
* a traced cube run tags spans with thread and cube ids;
* the bridges reproduce the gprof/OmpP analyses from the same spans;
* the disabled path (``tracer=None``) allocates nothing, mirroring the
  fused solver's zero-allocation gate.
"""

import json
import tracemalloc

import pytest

from repro.api import Simulation
from repro.config import SimulationConfig, StructureConfig
from repro.core.kernels import KERNEL_NAMES
from repro.observe import (
    Span,
    Telemetry,
    Tracer,
    merge_chrome_traces,
    span_tree_valid,
)


def _span(name, tid, start, duration, **kw):
    return Span(
        name,
        kw.get("cat", "kernel"),
        tid,
        kw.get("step", -1),
        kw.get("cube", -1),
        start,
        duration,
    )


def _fsi_config(**overrides):
    defaults = dict(
        fluid_shape=(16, 16, 16),
        tau=0.8,
        structure=StructureConfig(
            kind="flat_sheet", num_fibers=6, nodes_per_fiber=6
        ),
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestRecording:
    def test_record_and_span_context_manager(self):
        tracer = Tracer()
        with tracer.span("outer", cat="phase"):
            with tracer.span("inner"):
                pass
        names = [s.name for s in tracer.spans]
        assert names == ["inner", "outer"]  # exit order
        assert len(tracer) == 2
        assert span_tree_valid(tracer.spans)
        tracer.clear()
        assert len(tracer) == 0

    def test_span_end_property(self):
        s = _span("k", 0, 10.0, 2.5)
        assert s.end == pytest.approx(12.5)

    def test_threaded_recording_is_lossless(self):
        import threading

        tracer = Tracer()

        def worker(tid):
            for i in range(200):
                tracer.record("k", tid, float(i), 0.5)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer) == 800


class TestSpanTreeValid:
    def test_disjoint_and_nested_are_valid(self):
        spans = [
            _span("step", 0, 0.0, 10.0),
            _span("collide", 0, 1.0, 3.0),
            _span("stream", 0, 5.0, 3.0),
            _span("other_thread", 1, 2.0, 20.0),
        ]
        assert span_tree_valid(spans)

    def test_partial_overlap_is_invalid(self):
        spans = [
            _span("a", 0, 0.0, 5.0),
            _span("b", 0, 3.0, 5.0),  # starts inside a, ends outside
        ]
        assert not span_tree_valid(spans)

    def test_overlap_on_different_threads_is_fine(self):
        spans = [
            _span("a", 0, 0.0, 5.0),
            _span("b", 1, 3.0, 5.0),
        ]
        assert span_tree_valid(spans)

    def test_shared_endpoint_within_slack(self):
        spans = [
            _span("a", 0, 0.0, 2.0),
            _span("b", 0, 2.0, 2.0),
        ]
        assert span_tree_valid(spans)


class TestChromeExport:
    def test_export_round_trips_through_json(self, tmp_path):
        tracer = Tracer(name="test-trace", pid=3)
        tracer.record("collide", 1, tracer.epoch + 0.25, 0.5, step=7, cube=12)
        path = tmp_path / "sub" / "trace.json"
        tracer.save_chrome_trace(path)

        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert meta and meta[0]["args"]["name"] == "test-trace"
        (x,) = [e for e in events if e["ph"] == "X"]
        assert x["name"] == "collide"
        assert x["pid"] == 3 and x["tid"] == 1
        assert x["ts"] == pytest.approx(0.25e6, rel=1e-6)
        assert x["dur"] == pytest.approx(0.5e6, rel=1e-6)
        assert x["args"] == {"step": 7, "cube": 12}

    def test_untagged_span_has_empty_args(self):
        tracer = Tracer()
        tracer.record("k", 0, tracer.epoch, 0.1)
        (x,) = [e for e in tracer.to_chrome_trace()["traceEvents"] if e["ph"] == "X"]
        assert x["args"] == {}

    def test_merge_keeps_all_events(self):
        a, b = Tracer(pid=0), Tracer(pid=1)
        a.record("x", 0, a.epoch, 0.1)
        b.record("y", 0, b.epoch, 0.1)
        merged = merge_chrome_traces(a.to_chrome_trace(), b.to_chrome_trace())
        pids = {e["pid"] for e in merged["traceEvents"]}
        assert pids == {0, 1}
        assert len(merged["traceEvents"]) == 4  # 2 meta + 2 spans


class TestSequentialCoverage:
    def test_all_nine_kernels_traced_every_step(self):
        """Every Algorithm-1 kernel appears as a span on every step."""
        telemetry = Telemetry()
        with Simulation(_fsi_config(), telemetry=telemetry) as sim:
            sim.run(3)
        by_step = {}
        for s in telemetry.tracer.spans:
            by_step.setdefault(s.step, set()).add(s.name)
        assert sorted(by_step) == [0, 1, 2]
        for step, names in by_step.items():
            assert names == set(KERNEL_NAMES), f"step {step} missing kernels"
        assert span_tree_valid(telemetry.tracer.spans)

    def test_fused_variant_traces_its_kernel_vocabulary(self):
        telemetry = Telemetry()
        with Simulation(_fsi_config(solver="fused"), telemetry=telemetry) as sim:
            sim.run(2)
        names = {s.name for s in telemetry.tracer.spans}
        assert "fused_collide_stream" in names
        assert "swap_distributions" in names
        assert "move_fibers" in names
        assert span_tree_valid(telemetry.tracer.spans)


class TestCubeCoverage:
    def test_cube_spans_carry_thread_and_cube_ids(self):
        telemetry = Telemetry()
        config = _fsi_config(solver="cube", num_threads=2, cube_size=4)
        with Simulation(config, telemetry=telemetry) as sim:
            sim.run(2)
        spans = telemetry.tracer.spans
        cube_spans = [s for s in spans if s.cat == "cube"]
        assert cube_spans, "no per-cube spans recorded"
        assert {s.tid for s in spans} == {0, 1}
        # 16^3 grid at cube size 4 -> 64 cubes, each touched per step
        assert {s.cube for s in cube_spans} == set(range(64))
        assert all(s.step >= 0 for s in cube_spans)
        barrier_spans = [s for s in spans if s.cat == "barrier"]
        assert {s.name for s in barrier_spans} == {
            "barrier:after_stream",
            "barrier:after_update",
            "barrier:after_step",
        }
        assert span_tree_valid(spans)

    def test_async_cube_spans_tag_tasks(self):
        telemetry = Telemetry()
        config = _fsi_config(solver="async_cube", num_threads=2, cube_size=4)
        with Simulation(config, telemetry=telemetry) as sim:
            sim.run(1)
        cats = {s.cat for s in telemetry.tracer.spans}
        assert cats == {"task"}
        per_cube = [s for s in telemetry.tracer.spans if s.cube >= 0]
        assert {s.cube for s in per_cube} == set(range(64))


class TestBridges:
    def test_flat_profile_matches_span_totals(self):
        tracer = Tracer()
        tracer.record("collide", 0, 0.0, 2.0)
        tracer.record("collide", 0, 2.0, 1.0)
        tracer.record("stream", 0, 3.0, 1.0)
        tracer.record("wait", 0, 4.0, 9.0, cat="barrier")  # filtered out
        profile = tracer.flat_profile()
        assert profile.calls["collide"] == 2
        assert profile.seconds["collide"] == pytest.approx(3.0)
        assert "wait" not in profile.seconds
        assert profile.total_seconds == pytest.approx(4.0)

    def test_execution_trace_bridge(self):
        tracer = Tracer()
        tracer.record("collide", 0, 0.0, 2.0, step=0)
        tracer.record("collide", 1, 0.0, 1.0, step=0)
        trace = tracer.execution_trace()
        assert trace.num_threads == 2
        assert trace.seconds_by_kernel()["collide"] == pytest.approx(3.0)

    def test_parallel_profile_bridge(self):
        tracer = Tracer()
        for tid in range(2):
            tracer.record("collide", tid, 0.0, 1.0 + tid, step=0)
        profile = tracer.parallel_profile()
        (region,) = profile.region_stats()
        assert region.name == "collide"


class TestDisabledPath:
    def test_untraced_fused_step_allocates_nothing(self):
        """With telemetry disabled (the default) the instrumented fused
        step stays allocation-free: same gate as
        tests/verify/test_fused.py::TestZeroAllocation."""
        config = SimulationConfig(
            fluid_shape=(16, 16, 16),
            tau=0.8,
            solver="fused",
            structure=StructureConfig(kind="none"),
        )
        with Simulation(config) as sim:
            assert sim.solver.tracer is None
            sim.run(3)  # warmup: arena buffers, shift table
            tracemalloc.start()
            tracemalloc.reset_peak()
            sim.run(5)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        assert peak < 8192, f"untraced fused step allocated {peak} bytes at peak"

    def test_solvers_default_to_no_tracer(self):
        for solver, threads in [("sequential", 1), ("openmp", 2), ("cube", 2)]:
            config = _fsi_config(solver=solver, num_threads=threads)
            with Simulation(config) as sim:
                assert sim.solver.tracer is None
                sim.run(1)
