"""The benchmark-regression gate: pass/fail/drift semantics and the CLI.

The acceptance story: the gate passes a candidate within tolerance,
demonstrably fails an injected 2x slowdown, and reports schema drift
(missing keys, changed workload) as a typed error — never as a silent
pass.
"""

import copy
import json

import pytest

from repro.observe.__main__ import main as cli_main
from repro.observe.gate import (
    GateError,
    classify_key,
    compare_benchmarks,
    flatten_numeric,
    load_bench,
)

#: A miniature BENCH_fused.json-shaped record.
BASELINE = {
    "workload": {"scale": 8, "fluid_shape": [16, 16, 16], "steps": 3},
    "fused": {
        "solver": "fused",
        "step_seconds": 0.010,
        "per_kernel_seconds": {
            "fused_collide_stream": 0.006,
            "update_fluid_velocity": 0.002,
        },
        "alloc_peak_bytes": 4096,
        "alloc_retained_bytes": 0,
    },
    "whole_step_speedup": 2.0,
}


def _candidate(**tweaks):
    cand = copy.deepcopy(BASELINE)
    for dotted, value in tweaks.items():
        node = cand
        *path, leaf = dotted.split(".")
        for key in path:
            node = node[key]
        node[leaf] = value
    return cand


class TestFlattenAndClassify:
    def test_flatten_indexes_lists_and_skips_strings(self):
        flat = flatten_numeric(BASELINE)
        assert flat["workload.fluid_shape.0"] == 16.0
        assert flat["fused.step_seconds"] == pytest.approx(0.010)
        assert "fused.solver" not in flat  # string leaf

    def test_flatten_skips_bools(self):
        assert flatten_numeric({"flag": True}) == {}

    def test_classification(self):
        assert classify_key("fused.step_seconds") == "lower"
        assert classify_key("fused.alloc_peak_bytes") == "lower"
        # the kernel-name leaf inherits the _seconds subtree direction
        assert (
            classify_key("fused.per_kernel_seconds.fused_collide_stream") == "lower"
        )
        assert classify_key("whole_step_speedup") == "higher"
        assert classify_key("scatter.speedup") == "higher"
        assert classify_key("workload.scale") == "identity"
        assert classify_key("workload.fluid_shape.0") == "identity"

    def test_throughput_rates_are_higher_is_better(self):
        """``*_per_second`` leaves (the batched benchmark's steps/sec
        and sims/sec) gate as throughput: regressions are *drops*."""
        assert classify_key("fluid_only.b16.batched_sim_steps_per_second") == "higher"
        assert classify_key("scheduler.sims_per_second") == "higher"
        assert classify_key("fluid_only.b16.speedup") == "higher"
        # ...but only as the leaf: a nested identity echo stays identity,
        # and cost subtrees are untouched.
        assert classify_key("scheduler.wall_seconds") == "lower"
        assert classify_key("workload.scheduler_jobs") == "identity"
        assert classify_key("scheduler.jobs") == "identity"


class TestGateDecisions:
    def test_identical_records_pass(self):
        report = compare_benchmarks(BASELINE, copy.deepcopy(BASELINE))
        assert report.ok
        assert not report.failures

    def test_within_tolerance_passes(self):
        cand = _candidate(**{"fused.step_seconds": 0.012})  # +20% < 50%
        assert compare_benchmarks(BASELINE, cand, tolerance=0.5).ok

    def test_injected_2x_slowdown_fails(self):
        cand = _candidate(**{"fused.step_seconds": 0.020})
        report = compare_benchmarks(BASELINE, cand, tolerance=0.5)
        assert not report.ok
        (failure,) = report.failures
        assert failure.key == "fused.step_seconds"
        assert failure.status == "regression"
        assert failure.ratio == pytest.approx(2.0)
        assert "fused.step_seconds" in report.render()

    def test_speedup_collapse_fails(self):
        cand = _candidate(whole_step_speedup=0.8)  # 2.0 -> 0.8 = -60%
        report = compare_benchmarks(BASELINE, cand, tolerance=0.5)
        assert [v.key for v in report.failures] == ["whole_step_speedup"]

    def test_faster_candidate_passes(self):
        cand = _candidate(**{"fused.step_seconds": 0.001}, whole_step_speedup=9.0)
        assert compare_benchmarks(BASELINE, cand, tolerance=0.5).ok

    def test_zero_byte_baseline_gets_absolute_slack(self):
        # retained 0 -> 2048 bytes would be an infinite relative ratio
        cand = _candidate(**{"fused.alloc_retained_bytes": 2048})
        assert compare_benchmarks(BASELINE, cand).ok
        cand = _candidate(**{"fused.alloc_retained_bytes": 65536})
        assert not compare_benchmarks(BASELINE, cand).ok

    def test_keys_patterns_restrict_gating(self):
        cand = _candidate(**{"fused.step_seconds": 0.050})
        report = compare_benchmarks(
            BASELINE, cand, keys=["*alloc*"]
        )  # timing key not gated
        assert report.ok

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare_benchmarks(BASELINE, BASELINE, tolerance=-0.1)


class TestSchemaDrift:
    def test_workload_drift_raises(self):
        cand = _candidate(**{"workload.scale": 4})
        with pytest.raises(GateError, match="identity key 'workload.scale'"):
            compare_benchmarks(BASELINE, cand)

    def test_missing_gated_key_raises(self):
        cand = copy.deepcopy(BASELINE)
        del cand["fused"]["step_seconds"]
        with pytest.raises(GateError, match="absent from the candidate"):
            compare_benchmarks(BASELINE, cand)

    def test_unexpected_key_raises(self):
        cand = _candidate(**{"fused.new_seconds": 1.0})
        with pytest.raises(GateError, match="absent from the baseline"):
            compare_benchmarks(BASELINE, cand)

    def test_load_bench_errors_are_typed_and_clear(self, tmp_path):
        with pytest.raises(GateError, match="does not exist"):
            load_bench(tmp_path / "nope.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(GateError, match="not valid JSON"):
            load_bench(bad)
        arr = tmp_path / "arr.json"
        arr.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(GateError, match="must be a JSON object"):
            load_bench(arr)


class TestCommandLine:
    def _write(self, tmp_path, name, record):
        path = tmp_path / name
        path.write_text(json.dumps(record), encoding="utf-8")
        return str(path)

    def test_pass_exits_zero(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", BASELINE)
        cand = self._write(
            tmp_path, "cand.json", _candidate(**{"fused.step_seconds": 0.011})
        )
        assert cli_main(["compare", base, cand]) == 0
        assert "bench-gate: PASS" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", BASELINE)
        cand = self._write(
            tmp_path, "cand.json", _candidate(**{"fused.step_seconds": 0.020})
        )
        assert cli_main(["compare", base, cand, "--tol", "0.5"]) == 1
        captured = capsys.readouterr()
        assert "bench-gate: FAIL" in captured.err
        assert "fused.step_seconds" in captured.out

    def test_schema_drift_exits_two(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", BASELINE)
        cand = self._write(tmp_path, "cand.json", _candidate(**{"workload.scale": 4}))
        assert cli_main(["compare", base, cand]) == 2
        assert "SCHEMA ERROR" in capsys.readouterr().err

    def test_missing_file_exits_two(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", BASELINE)
        assert cli_main(["compare", base, str(tmp_path / "gone.json")]) == 2
        assert "SCHEMA ERROR" in capsys.readouterr().err
