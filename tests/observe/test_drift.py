"""Tests of the sliding-window drift detector."""

import pytest

from repro.errors import ConfigurationError
from repro.observe import DriftDetector


class TestValidation:
    def test_threshold_must_exceed_one(self):
        with pytest.raises(ConfigurationError):
            DriftDetector(threshold=1.0)

    def test_expected_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            DriftDetector(expected=0.0)

    def test_window_and_patience_positive(self):
        with pytest.raises(ConfigurationError):
            DriftDetector(window=0)
        with pytest.raises(ConfigurationError):
            DriftDetector(patience=0)


class TestDetection:
    def test_silent_until_window_fills(self):
        d = DriftDetector(expected=1.0, window=4, patience=1)
        for _ in range(3):
            assert not d.observe(100.0)
        assert d.median is None

    def test_single_spike_never_triggers(self):
        d = DriftDetector(expected=1.0, threshold=1.5, window=4, patience=2)
        samples = [1.0, 1.0, 1.0, 1.0, 50.0, 1.0, 1.0, 1.0, 1.0]
        assert not any(d.observe(s) for s in samples)

    def test_sustained_drift_confirms_after_patience(self):
        d = DriftDetector(expected=1.0, threshold=1.5, window=4, patience=2)
        for _ in range(4):
            assert not d.observe(1.0)
        fired = [d.observe(8.0) for _ in range(6)]
        assert any(fired)
        # Strikes need the *median* over threshold: with a window of 4
        # that takes 3 drifted samples, plus patience 2 -> first True at
        # the 4th drifted sample.
        assert fired.index(True) == 3

    def test_below_threshold_resets_strikes(self):
        d = DriftDetector(expected=1.0, threshold=1.5, window=1, patience=3)
        assert not d.observe(2.0)
        assert not d.observe(2.0)
        assert not d.observe(1.0)  # strike streak broken
        assert not d.observe(2.0)
        assert not d.observe(2.0)
        assert d.observe(2.0)


class TestSelfBaselining:
    def test_first_window_median_becomes_expected(self):
        d = DriftDetector(expected=None, window=4, patience=1)
        for _ in range(4):
            d.observe(2.0)
        assert d.expected == 2.0

    def test_judges_relative_to_learned_baseline(self):
        d = DriftDetector(expected=None, threshold=1.5, window=2, patience=1)
        d.observe(2.0)
        d.observe(2.0)  # baseline learned: 2.0
        assert not d.observe(2.5)  # window median 2.0, below 2.0 * 1.5
        assert not d.observe(4.0)  # window median 2.5, still below
        assert d.observe(4.0)  # window median 4.0 exceeds 3.0


class TestRebaseline:
    def test_adopts_new_expectation_and_cools_down(self):
        d = DriftDetector(expected=1.0, threshold=1.5, window=2, patience=1, cooldown=10)
        d.observe(1.0)
        d.observe(1.0)
        assert d.observe(8.0) or d.observe(8.0)
        d.rebaseline(8.0)
        assert d.expected == 8.0
        assert d.strikes == 0
        # Inside the cooldown even huge values cannot confirm.
        assert not any(d.observe(100.0) for _ in range(8))

    def test_default_rebaseline_uses_current_median(self):
        d = DriftDetector(expected=1.0, window=2, patience=1, cooldown=0)
        d.observe(6.0)
        d.observe(6.0)
        d.rebaseline()
        assert d.expected == 6.0

    def test_rebaseline_rejects_nonpositive(self):
        d = DriftDetector(expected=1.0, window=2)
        with pytest.raises(ConfigurationError):
            d.rebaseline(-1.0)
