"""The metrics registry: semantics, thread-safety, snapshot round-trip."""

import json
import threading

import pytest

from repro.observe import MetricsRegistry


class TestInstruments:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("sim.steps")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)
        assert counter.value == 5

    def test_gauge_keeps_last_value(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("parallel.load_imbalance")
        gauge.set(0.25)
        gauge.set(0.125)
        assert gauge.value == 0.125

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        hist = registry.histogram("parallel.barrier_wait_seconds")
        for v in (1.0, 3.0, 2.0):
            hist.observe(v)
        assert hist.count == 3
        assert hist.total == pytest.approx(6.0)
        assert hist.min == pytest.approx(1.0)
        assert hist.max == pytest.approx(3.0)
        assert hist.mean == pytest.approx(2.0)

    def test_empty_histogram_mean_is_zero(self):
        assert MetricsRegistry().histogram("h").mean == 0.0

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")


class TestQuantiles:
    def test_small_stream_keeps_every_sample(self):
        registry = MetricsRegistry()
        sketch = registry.quantiles("service.step_seconds")
        for v in (5.0, 1.0, 3.0, 2.0, 4.0):
            sketch.observe(v)
        assert sketch.count == 5
        assert sketch.stride == 1
        assert sketch.quantile(0.0) == 1.0
        assert sketch.quantile(0.5) == 3.0
        assert sketch.quantile(1.0) == 5.0

    def test_empty_sketch_returns_none(self):
        assert MetricsRegistry().quantiles("q").quantile(0.99) is None

    def test_invalid_quantile_rejected(self):
        sketch = MetricsRegistry().quantiles("q")
        sketch.observe(1.0)
        with pytest.raises(ValueError):
            sketch.quantile(1.5)

    def test_decimation_is_deterministic_and_bounded(self):
        registry = MetricsRegistry()
        a = registry.quantiles("a", capacity=64)
        b = registry.quantiles("b", capacity=64)
        for i in range(10_000):
            a.observe(float(i))
            b.observe(float(i))
        assert a.count == 10_000
        assert len(a.samples) < 64
        assert a.stride > 1
        # Same stream, same retained set: no randomness anywhere.
        assert a.samples == b.samples
        # The tail quantile tracks the true p99 within the stride error.
        assert a.quantile(0.99) == pytest.approx(9900.0, rel=0.02)

    def test_get_or_create_returns_same_sketch(self):
        registry = MetricsRegistry()
        assert registry.quantiles("q") is registry.quantiles("q")


class TestThreadSafety:
    def test_concurrent_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        hist = registry.histogram("samples")
        per_thread, threads = 1000, 8

        def worker():
            for _ in range(per_thread):
                counter.inc()
                hist.observe(1.0)

        workers = [threading.Thread(target=worker) for _ in range(threads)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        assert counter.value == per_thread * threads
        assert hist.count == per_thread * threads
        assert hist.total == pytest.approx(per_thread * threads)


class TestSnapshotRoundTrip:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("sim.steps").inc(42)
        registry.counter("resilience.stability_rollback").inc(2)
        registry.gauge("parallel.load_imbalance").set(0.375)
        hist = registry.histogram("parallel.barrier_wait_seconds")
        for v in (0.001, 0.25, 0.01, 0.02):
            hist.observe(v)
        registry.histogram("empty.histogram")
        sketch = registry.quantiles("service.step_seconds", capacity=16)
        for v in range(40):
            sketch.observe(float(v) / 10.0)
        registry.quantiles("empty.quantiles")
        return registry

    def test_snapshot_is_json_serializable(self):
        snap = self._populated().snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert snap["counters"]["sim.steps"] == 42
        assert snap["histograms"]["empty.histogram"]["min"] is None

    def test_from_snapshot_reproduces_snapshot_exactly(self):
        original = self._populated()
        rebuilt = MetricsRegistry.from_snapshot(original.snapshot())
        assert rebuilt.snapshot() == original.snapshot()

    def test_single_sample_histogram_round_trips(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(3.5)
        rebuilt = MetricsRegistry.from_snapshot(registry.snapshot())
        assert rebuilt.snapshot() == registry.snapshot()

    def test_save_load_file_round_trip(self, tmp_path):
        original = self._populated()
        path = tmp_path / "nested" / "metrics.json"
        original.save(path)
        assert MetricsRegistry.load(path).snapshot() == original.snapshot()
