"""End-to-end telemetry wiring: Simulation, runner, and oracle metrics."""

import pytest

from repro.api import Simulation
from repro.config import SimulationConfig, StructureConfig
from repro.observe import Telemetry
from repro.resilience.runner import ResilientRunner, RetryPolicy
from repro.verify.invariants import InvariantSuite
from repro.verify.oracle import DifferentialOracle


def _config(**overrides):
    defaults = dict(fluid_shape=(16, 16, 16), tau=0.8)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestSimulationWiring:
    def test_run_bumps_step_counter(self):
        telemetry = Telemetry()
        with Simulation(_config(), telemetry=telemetry) as sim:
            sim.run(4)
            sim.run(3)
        assert telemetry.metrics.counter("sim.steps").value == 7

    def test_attach_telemetry_after_construction(self):
        telemetry = Telemetry()
        with Simulation(_config()) as sim:
            sim.attach_telemetry(telemetry)
            assert sim.telemetry is telemetry
            sim.run(1)
        assert telemetry.metrics.counter("sim.steps").value == 1
        assert len(telemetry.tracer) > 0

    def test_lazy_distributed_solver_gets_tracer_on_first_run(self):
        telemetry = Telemetry()
        config = _config(
            solver="distributed",
            num_threads=2,
            structure=StructureConfig(kind="none"),
        )
        with Simulation(config, telemetry=telemetry) as sim:
            assert sim._solver is None  # still lazy after attach
            sim.run(2)
            assert sim._solver.tracer is telemetry.tracer
        assert {s.tid for s in telemetry.tracer.spans} == {0, 1}

    def test_collect_harvests_cube_solver_statistics(self):
        telemetry = Telemetry()
        config = _config(solver="cube", num_threads=2)
        with Simulation(config, telemetry=telemetry) as sim:
            sim.run(2)
            telemetry.collect(sim)
        snap = telemetry.metrics.snapshot()
        # 3 barriers x 2 steps
        assert snap["counters"]["parallel.barrier_crossings"] == 6
        assert snap["counters"]["parallel.lock_acquisitions"] > 0
        assert snap["histograms"]["parallel.barrier_wait_seconds"]["count"] > 0
        assert "parallel.load_imbalance" in snap["gauges"]

    def test_collect_counts_async_tasks(self):
        telemetry = Telemetry()
        config = _config(solver="async_cube", num_threads=2)
        with Simulation(config, telemetry=telemetry) as sim:
            sim.run(1)
            telemetry.collect(sim)
        counters = telemetry.metrics.snapshot()["counters"]
        # one task per cube for stream/update/copy + fiber blocks x2
        assert counters["parallel.tasks_executed"] >= 3 * 64

    def test_invariant_checks_counted(self):
        telemetry = Telemetry()
        suite = InvariantSuite.default(_config())
        with Simulation(_config(), invariants=suite, telemetry=telemetry) as sim:
            sim.run(3)
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["verify.invariant_checks"] == 3 * len(suite.invariants)


class TestRunnerWiring:
    def test_incidents_mirrored_as_counters(self, tmp_path):
        telemetry = Telemetry()
        runner = ResilientRunner(
            _config(),
            tmp_path,
            policy=RetryPolicy(checkpoint_every=2),
            telemetry=telemetry,
        )
        sim = runner.run(4)
        sim.close()
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["resilience.run_started"] == 1
        assert counters["resilience.checkpoint_saved"] == 2
        assert counters["resilience.run_completed"] == 1
        assert counters["sim.steps"] == 4


class TestOracleWiring:
    def test_steps_compared_and_divergences(self):
        telemetry = Telemetry()
        oracle = DifferentialOracle(
            _config(), variant_b="fused", telemetry=telemetry
        )
        assert oracle.run(2) is None
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["verify.steps_compared"] == 2
        assert "verify.divergences" not in counters

    def test_divergence_counter_on_perturbed_config(self):
        telemetry = Telemetry()
        base = _config(structure=StructureConfig(kind="none"))
        perturbed = _config(
            tau=0.9, structure=StructureConfig(kind="none")
        )
        oracle = DifferentialOracle(
            base,
            variant_b="sequential",
            config_b=perturbed,
            state_seed=1,
            telemetry=telemetry,
        )
        divergence = oracle.run(5)
        assert divergence is not None
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["verify.divergences"] == 1
        assert counters["verify.steps_compared"] == divergence.step
