"""Tests of the NUMA topology helpers."""

import pytest

from repro.errors import MachineModelError
from repro.machine import numa
from repro.machine.spec import thog


class TestActiveNodes:
    def test_compact_fill(self):
        m = thog()
        assert numa.active_numa_nodes(m, 1) == 1
        assert numa.active_numa_nodes(m, 8) == 1
        assert numa.active_numa_nodes(m, 9) == 2
        assert numa.active_numa_nodes(m, 64) == 8

    def test_rejects_out_of_range(self):
        m = thog()
        with pytest.raises(MachineModelError):
            numa.active_numa_nodes(m, 0)
        with pytest.raises(MachineModelError):
            numa.active_numa_nodes(m, 65)


class TestInterleaveFactor:
    def test_factor_between_local_and_worst(self):
        m = thog()
        f = numa.interleave_distance_factor(m, 64)
        assert 1.0 < f < 2.2

    def test_thog_mean_factor(self):
        """Interleaved access on thog averages 1.75x local distance."""
        m = thog()
        assert numa.interleave_distance_factor(m, 64) == pytest.approx(1.75)

    def test_factor_independent_of_thread_count_for_full_rows(self):
        """Every thog distance row has the same mean -> constant factor."""
        m = thog()
        f1 = numa.interleave_distance_factor(m, 1)
        f64 = numa.interleave_distance_factor(m, 64)
        assert f1 == pytest.approx(f64)


class TestRemoteFraction:
    def test_thog(self):
        assert numa.remote_access_fraction(thog(), 8) == pytest.approx(7 / 8)


class TestRendering:
    def test_distance_table_text(self):
        text = numa.distance_table_as_text(thog())
        lines = text.splitlines()
        assert len(lines) == 9  # header + 8 rows
        assert "10" in lines[1] and "22" in lines[1]
