"""Tests of the PAPI-substitute simulated counters.

These use a deliberately small grid: the goal here is plumbing and
directional correctness; quantitative behaviour is exercised by the
Table II benchmark.
"""

import numpy as np
import pytest

from repro.machine.counters import SimulatedCounters
from repro.machine.spec import abu_dhabi

SHAPE = (16, 8, 16)


@pytest.fixture(scope="module")
def counters():
    # reference equal to sim size: real cache geometry, no scaling
    return SimulatedCounters(abu_dhabi(), SHAPE[0] * SHAPE[1] * SHAPE[2])


@pytest.fixture(scope="module")
def scaled_counters():
    # paper-sized reference: L2/L3 scale down so the working set
    # exceeds them, the regime of the paper's Table II
    return SimulatedCounters(abu_dhabi(), 124 * 64 * 64)


class TestMissRates:
    def test_rates_are_probabilities(self, counters):
        r = counters.openmp_miss_rates(SHAPE, num_threads=2)
        assert 0.0 <= r.l1 <= 1.0
        assert 0.0 <= r.l2 <= 1.0

    def test_l1_miss_small(self, counters):
        """With scalar-access accounting, L1 misses are a few percent."""
        r = counters.openmp_miss_rates(SHAPE)
        assert r.l1 < 0.06

    def test_cube_layout_lower_l2_than_global(self, scaled_counters):
        """The cube layout's locality advantage (paper Section V).

        Only holds in the out-of-cache regime the paper operates in
        (working set >> L2); with everything L2-resident both layouts
        hit and the contrast disappears.
        """
        omp = scaled_counters.openmp_miss_rates(SHAPE)
        cube = scaled_counters.cube_miss_rates(SHAPE, cube_size=4)
        assert cube.l2 < omp.l2

    def test_in_cache_regime_shows_no_contrast(self, counters):
        """When the whole problem fits L2, both layouts mostly hit."""
        omp = counters.openmp_miss_rates(SHAPE)
        assert omp.l2 < 0.2

    def test_per_thread_slab_selection(self, counters):
        r0 = counters.openmp_miss_rates(SHAPE, num_threads=4, thread_id=0)
        r3 = counters.openmp_miss_rates(SHAPE, num_threads=4, thread_id=3)
        # different slabs of a homogeneous problem behave alike
        assert r0.l1 == pytest.approx(r3.l1, abs=0.01)

    def test_cube_subset(self, counters):
        r = counters.cube_miss_rates(SHAPE, cube_size=4, cube_ids=np.array([0, 1]))
        assert 0.0 <= r.l2 <= 1.0
