"""Tests of the kernel work characteristics and Table-I calibration."""

import pytest

from repro.machine import workload


class TestKernelWork:
    def test_all_nine_kernels_described(self):
        assert len(workload.KERNEL_WORK) == 9
        assert set(workload.KERNEL_WORK) == set(workload.PAPER_TABLE1_PERCENTAGES)

    def test_fluid_fiber_split_matches_paper(self):
        """Four fluid-node kernels (Table I top four), five fiber kernels."""
        assert len(workload.FLUID_KERNELS) == 4
        assert len(workload.FIBER_KERNELS) == 5
        assert "compute_fluid_collision" in workload.FLUID_KERNELS
        assert "move_fibers" in workload.FIBER_KERNELS

    def test_streaming_bytes(self):
        w = workload.KERNEL_WORK["stream_fluid_velocity_distribution"]
        assert w.bytes_read == 19 * 8
        assert w.bytes_written == 19 * 8
        assert w.cube_bytes_read == 0  # fused with collision

    def test_cube_bytes_default_to_global(self):
        w = workload.KERNEL_WORK["compute_fluid_collision"]
        assert w.cube_bytes_total() == w.bytes_total

    def test_spread_touches_influential_domain(self):
        w = workload.KERNEL_WORK["spread_force_from_fibers_to_fluid"]
        assert w.bytes_written == 64 * 3 * 8  # 4x4x4 domain, 3 components


class TestScalarCycles:
    def test_derived_from_table1(self):
        """cycles/node must reproduce the Table I percentages exactly."""
        seconds = workload.step_scalar_seconds(124 * 64 * 64, 52 * 52, 2.9)
        total = sum(seconds.values())
        for name, pct in workload.PAPER_TABLE1_PERCENTAGES.items():
            assert 100 * seconds[name] / total == pytest.approx(
                pct / sum(workload.PAPER_TABLE1_PERCENTAGES.values()) * 100,
                rel=1e-10,
            )

    def test_total_time_near_967_seconds(self):
        seconds = workload.step_scalar_seconds(124 * 64 * 64, 52 * 52, 2.9)
        total_500 = 500 * sum(seconds.values())
        assert total_500 == pytest.approx(967.0, rel=0.02)

    def test_collision_dominates(self):
        c = workload.SCALAR_CYCLES_PER_NODE
        assert c["compute_fluid_collision"] > 5 * c["update_fluid_velocity"]

    def test_scales_linearly_with_nodes(self):
        a = workload.step_scalar_seconds(1000, 100, 2.0)
        b = workload.step_scalar_seconds(2000, 100, 2.0)
        assert b["compute_fluid_collision"] == pytest.approx(
            2 * a["compute_fluid_collision"]
        )
        assert b["move_fibers"] == pytest.approx(a["move_fibers"])


class TestStepBytes:
    def test_cube_layout_moves_less(self):
        g = workload.step_bytes(10_000, 100, layout="global")
        c = workload.step_bytes(10_000, 100, layout="cube")
        assert c < g

    def test_inplace_layout_elides_stream_and_copy(self):
        """The AA step saves exactly the stream + copy kernel traffic."""
        fluid, fiber = 10_000, 100
        g = workload.step_bytes(fluid, fiber, layout="global")
        a = workload.step_bytes(fluid, fiber, layout="inplace")
        elided = sum(
            workload.KERNEL_WORK[name].bytes_total
            for name in workload._INPLACE_ELIDED_KERNELS
        )
        assert a == pytest.approx(g - elided * fluid)
        assert a < g

    def test_rejects_unknown_layout(self):
        with pytest.raises(ValueError):
            workload.step_bytes(100, 10, layout="hexagon")
