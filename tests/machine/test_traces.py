"""Tests of the address-trace generators."""

import numpy as np
import pytest

from repro.errors import MachineModelError
from repro.machine import traces


class TestGlobalTrace:
    def test_trace_length(self):
        shape = (4, 4, 4)
        addrs = traces.global_step_addresses(shape)
        # per node: collision 41 + stream 38 + update 29 + copy 38 = 146
        assert addrs.size == 64 * 146

    def test_slab_trace_scales_with_slab(self):
        shape = (8, 4, 4)
        full = traces.global_step_addresses(shape)
        half = traces.global_step_addresses(shape, 0, 4)
        assert half.size == full.size // 2

    def test_addresses_double_aligned(self):
        addrs = traces.global_step_addresses((4, 4, 4))
        assert (addrs % 8 == 0).all()

    def test_addresses_within_record_array(self):
        shape = (4, 4, 4)
        addrs = traces.global_step_addresses(shape)
        assert addrs.min() >= 0
        assert addrs.max() < 64 * traces.RECORD_BYTES

    def test_rejects_bad_slab(self):
        with pytest.raises(MachineModelError):
            traces.global_step_addresses((4, 4, 4), 3, 2)

    def test_streaming_touches_neighbor_records(self):
        """For a 2-record-thick slab, streaming writes leave the slab."""
        shape = (4, 2, 2)
        addrs = traces.global_step_addresses(shape, 0, 1)
        records = addrs // traces.RECORD_BYTES
        own = set(range(4))  # records of x = 0 plane
        assert (set(records.tolist()) - own)  # touches other planes too


class TestCubeTrace:
    def test_trace_length_matches_global(self):
        shape = (4, 4, 4)
        g = traces.global_step_addresses(shape)
        c = traces.cube_step_addresses(shape, 2)
        assert c.size == g.size

    def test_single_cube_subset(self):
        shape = (4, 4, 4)
        c = traces.cube_step_addresses(shape, 2, cube_ids=np.array([0]))
        full = traces.cube_step_addresses(shape, 2)
        assert c.size == full.size // 8

    def test_rejects_indivisible(self):
        with pytest.raises(MachineModelError):
            traces.cube_step_addresses((5, 4, 4), 2)

    def test_cube_layout_is_more_local_than_global(self):
        """The defining locality claim: within a cube-fused collision+
        stream pass, touched addresses span a much smaller range."""
        shape = (8, 8, 8)
        k = 2
        g = traces.global_step_addresses(shape, 0, k)  # one slab of k planes
        c = traces.cube_step_addresses(shape, k, cube_ids=np.array([0]))
        # compare address spreads of the first quarter of each trace
        g_span = np.ptp(g[: g.size // 4])
        c_span = np.ptp(c[: c.size // 4])
        assert c_span < g_span


class TestInplaceTrace:
    def test_trace_length(self):
        shape = (4, 4, 4)
        # per node, either phase: collision 41 + update 29 = 70 — no copy
        for phase in (0, 1):
            addrs = traces.inplace_step_addresses(shape, phase=phase)
            assert addrs.size == 64 * 70

    def test_no_copy_kernel(self):
        """The AA step is shorter than the two-lattice step by exactly
        the streaming re-read and the copy kernel."""
        shape = (4, 4, 4)
        g = traces.global_step_addresses(shape)
        a = traces.inplace_step_addresses(shape)
        # global: 146/node; inplace: 70/node (collision+stream fused into
        # one 41-access pass, update gathers instead of re-reading df_new,
        # copy gone entirely)
        assert a.size == g.size - 64 * 76

    def test_addresses_within_single_lattice(self):
        shape = (4, 4, 4)
        for phase in (0, 1):
            addrs = traces.inplace_step_addresses(shape, phase=phase)
            assert addrs.min() >= 0
            assert addrs.max() < 64 * traces.INPLACE_RECORD_BYTES

    def test_even_collision_is_record_local(self):
        """Phase 0 collision touches only the node's own record."""
        shape = (4, 4, 4)
        addrs = traces.inplace_step_addresses(shape, phase=0)
        collision = addrs[: 64 * 41].reshape(64, 41)
        records = collision // traces.INPLACE_RECORD_BYTES
        assert (records == records[:, :1]).all()

    def test_odd_collision_touches_both_neighbor_sides(self):
        """Phase 1 gathers from x - e and pushes to x + e."""
        shape = (4, 2, 2)
        addrs = traces.inplace_step_addresses(shape, 0, 1, phase=1)
        records = addrs // traces.INPLACE_RECORD_BYTES
        own = set(range(4))  # records of the x = 0 plane
        assert set(records.tolist()) - own

    def test_rejects_bad_phase(self):
        with pytest.raises(MachineModelError):
            traces.inplace_step_addresses((4, 4, 4), phase=2)

    def test_rejects_bad_slab(self):
        with pytest.raises(MachineModelError):
            traces.inplace_step_addresses((4, 4, 4), 3, 2)


class TestRecordLayout:
    def test_record_size(self):
        assert traces.RECORD_DOUBLES == 48
        assert traces.RECORD_BYTES == 384

    def test_inplace_record_size(self):
        # one lattice (19) + u*/u/force (9) + rho (1)
        assert traces.INPLACE_RECORD_DOUBLES == 29
        assert traces.INPLACE_RECORD_BYTES == 232
