"""Tests of the machine descriptions (paper Tables III, IV)."""

import numpy as np
import pytest

from repro.errors import MachineModelError
from repro.machine.spec import CacheSpec, MachineSpec, abu_dhabi, thog


class TestCacheSpec:
    def test_num_sets(self):
        c = CacheSpec(level=1, size_bytes=16 * 1024, line_bytes=64, associativity=4, shared_by=1)
        assert c.num_sets == 64

    def test_rejects_indivisible_geometry(self):
        with pytest.raises(MachineModelError):
            CacheSpec(level=1, size_bytes=1000, line_bytes=64, associativity=4, shared_by=1)

    def test_rejects_non_positive(self):
        with pytest.raises(MachineModelError):
            CacheSpec(level=1, size_bytes=0, line_bytes=64, associativity=1, shared_by=1)


class TestThogPreset:
    """The thog machine must match paper Table III exactly."""

    def test_core_counts(self):
        m = thog()
        assert m.num_cores == 64
        assert m.num_sockets == 4
        assert m.cores_per_socket == 16
        assert m.ghz == 2.5

    def test_cache_hierarchy(self):
        m = thog()
        assert m.cache(1).size_bytes == 16 * 1024
        assert m.cache(2).size_bytes == 2 * 1024 * 1024
        assert m.cache(2).shared_by == 2
        assert m.cache(3).size_bytes == 12 * 1024 * 1024
        assert m.cache(3).shared_by == 8

    def test_numa_layout(self):
        m = thog()
        assert m.num_numa_nodes == 8
        assert m.cores_per_numa_node == 8
        assert m.memory_per_numa_gb == 32.0

    def test_numa_distance_is_table4(self):
        m = thog()
        assert m.numa_distance.shape == (8, 8)
        assert (np.diag(m.numa_distance) == 10).all()
        assert m.numa_distance.max() == 22
        assert m.numa_distance[0, 1] == 16
        assert m.numa_distance[0, 3] == 22

    def test_remote_access_up_to_2_2x(self):
        """Paper: remote access can take 2.2x local time."""
        m = thog()
        assert m.numa_distance.max() / 10.0 == pytest.approx(2.2)


class TestAbuDhabiPreset:
    def test_core_counts(self):
        m = abu_dhabi()
        assert m.num_cores == 32
        assert m.ghz == 2.9

    def test_core_to_numa_mapping(self):
        m = abu_dhabi()
        assert m.numa_node_of_core(0) == 0
        assert m.numa_node_of_core(8) == 1
        assert m.numa_node_of_core(31) == 3
        with pytest.raises(MachineModelError):
            m.numa_node_of_core(32)


class TestValidation:
    def test_rejects_asymmetric_distance(self):
        d = np.array([[10.0, 16.0], [22.0, 10.0]])
        with pytest.raises(MachineModelError, match="symmetric"):
            MachineSpec(
                name="x", processor="x", num_sockets=1, cores_per_socket=4,
                ghz=1.0, caches=(), num_numa_nodes=2, memory_per_numa_gb=1.0,
                numa_distance=d,
            )

    def test_rejects_wrong_distance_shape(self):
        with pytest.raises(MachineModelError, match="shape"):
            MachineSpec(
                name="x", processor="x", num_sockets=1, cores_per_socket=4,
                ghz=1.0, caches=(), num_numa_nodes=4, memory_per_numa_gb=1.0,
                numa_distance=np.eye(2) * 10,
            )

    def test_missing_cache_level(self):
        m = thog()
        with pytest.raises(MachineModelError, match="no L4"):
            m.cache(4)

    def test_mean_numa_distance_bounds(self):
        m = thog()
        assert 10 <= m.mean_numa_distance(1) <= 22
        with pytest.raises(MachineModelError):
            m.mean_numa_distance(9)
