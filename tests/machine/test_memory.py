"""Tests of the bandwidth / contention model."""

import pytest

from repro.errors import MachineModelError
from repro.machine import memory
from repro.machine.calibration import OPENMP_STRONG_ABU_DHABI
from repro.machine.spec import thog


class TestEffectiveBandwidth:
    def test_monotone_in_threads(self):
        m = thog()
        values = [memory.effective_bandwidth(m, n) for n in range(1, 65)]
        assert all(b2 > b1 for b1, b2 in zip(values, values[1:]))

    def test_single_core_near_peak(self):
        m = thog()
        b1 = memory.effective_bandwidth(m, 1)
        assert b1 == pytest.approx(
            m.per_core_bandwidth_gbs / (1 + 1 / m.bandwidth_half_point)
        )

    def test_saturates_below_linear(self):
        m = thog()
        b64 = memory.effective_bandwidth(m, 64)
        assert b64 < 64 * m.per_core_bandwidth_gbs / 2

    def test_rejects_out_of_range(self):
        with pytest.raises(MachineModelError):
            memory.effective_bandwidth(thog(), 0)
        with pytest.raises(MachineModelError):
            memory.effective_bandwidth(thog(), 65)


class TestContention:
    def test_grows_with_threads(self):
        fit = OPENMP_STRONG_ABU_DHABI
        assert memory.contention_factor(fit, 32) > memory.contention_factor(fit, 1)

    def test_unit_at_small_alpha(self):
        fit = OPENMP_STRONG_ABU_DHABI
        assert memory.contention_factor(fit, 1) == pytest.approx(1 + fit.alpha)

    def test_rejects_zero_threads(self):
        with pytest.raises(MachineModelError):
            memory.contention_factor(OPENMP_STRONG_ABU_DHABI, 0)


class TestDemandAndSaturation:
    def test_bandwidth_demand(self):
        assert memory.bandwidth_demand(2e9, 1.0) == pytest.approx(2.0)
        with pytest.raises(MachineModelError):
            memory.bandwidth_demand(1.0, 0.0)

    def test_saturation_core_count(self):
        m = thog()
        n = memory.saturation_core_count(m, 0.8)
        assert 1 <= n <= 64
        # reaching 80% of the asymptote takes many cores
        assert n > 10
        with pytest.raises(MachineModelError):
            memory.saturation_core_count(m, 1.5)
