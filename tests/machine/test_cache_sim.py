"""Tests of the set-associative LRU cache simulator."""

import numpy as np
import pytest

from repro.errors import MachineModelError
from repro.machine.cache_sim import (
    CacheHierarchy,
    SetAssociativeCache,
    scaled_cache,
    working_set_nodes,
)
from repro.machine.spec import CacheSpec


class TestSetAssociativeCache:
    def test_cold_miss_then_hit(self):
        c = SetAssociativeCache(4, 2, 64)
        assert not c.access_line(0)
        assert c.access_line(0)
        assert c.stats.accesses == 2
        assert c.stats.misses == 1
        assert c.stats.hits == 1

    def test_lru_eviction_order(self):
        c = SetAssociativeCache(1, 2, 64)  # one set, two ways
        c.access_line(0)
        c.access_line(1)
        c.access_line(0)  # 0 becomes MRU; LRU is 1
        c.access_line(2)  # evicts 1
        assert c.access_line(0)  # still resident
        assert not c.access_line(1)  # was evicted

    def test_set_mapping_isolates_lines(self):
        c = SetAssociativeCache(2, 1, 64)
        c.access_line(0)  # set 0
        c.access_line(1)  # set 1
        assert c.access_line(0)
        assert c.access_line(1)

    def test_conflict_thrash_with_low_associativity(self):
        c = SetAssociativeCache(2, 1, 64)
        # lines 0, 2, 4 all map to set 0 and keep evicting each other
        for _ in range(3):
            for line in (0, 2, 4):
                c.access_line(line)
        assert c.stats.hits == 0

    def test_capacity(self):
        c = SetAssociativeCache(64, 4, 64)
        assert c.size_bytes == 16 * 1024

    def test_next_line_prefetch_hides_streaming(self):
        base = SetAssociativeCache(64, 4, 64)
        pf = SetAssociativeCache(64, 4, 64, next_line_prefetch=True)
        for line in range(200):
            base.access_line(line)
            pf.access_line(line)
        assert base.stats.misses == 200
        assert pf.stats.misses < 110  # every other line prefetched

    def test_reset(self):
        c = SetAssociativeCache(4, 2, 64)
        c.access_line(0)
        c.reset()
        assert c.stats.accesses == 0
        assert not c.access_line(0)  # cold again

    def test_rejects_bad_geometry(self):
        with pytest.raises(MachineModelError):
            SetAssociativeCache(0, 1, 64)

    def test_from_spec(self):
        spec = CacheSpec(level=2, size_bytes=2 * 1024 * 1024, line_bytes=64, associativity=16, shared_by=2)
        c = SetAssociativeCache.from_spec(spec)
        assert c.size_bytes == spec.size_bytes
        assert c.ways == 16


class TestHierarchy:
    def _hier(self, scalar=0.0):
        l1 = SetAssociativeCache(4, 2, 64)
        l2 = SetAssociativeCache(64, 4, 64)
        return CacheHierarchy([l1, l2], scalar_hits_per_access=scalar)

    def test_l1_miss_goes_to_l2(self):
        h = self._hier()
        h.access_addresses(np.array([0]))
        assert h.levels[0].stats.misses == 1
        assert h.levels[1].stats.accesses == 1

    def test_l1_hit_stops_lookup(self):
        h = self._hier()
        h.access_addresses(np.array([0, 0]))
        assert h.levels[1].stats.accesses == 1

    def test_l2_catches_l1_evictions(self):
        h = self._hier()
        # thrash L1 set 0 with lines 0, 8, 16 (4 sets -> all map to set 0)
        addrs = np.array([0, 8 * 64, 16 * 64] * 10)
        h.access_addresses(addrs)
        assert h.miss_rate(1) == 1.0  # L1 always misses
        assert h.miss_rate(2) < 0.2  # but L2 holds all three lines

    def test_scalar_hits_lower_l1_miss_rate(self):
        plain = self._hier(scalar=0.0)
        seasoned = self._hier(scalar=9.0)
        addrs = (np.arange(100) * 64).astype(np.int64)
        plain.access_addresses(addrs)
        seasoned.access_addresses(addrs)
        assert seasoned.miss_rate(1) == pytest.approx(plain.miss_rate(1) / 10)

    def test_mismatched_line_sizes_rejected(self):
        with pytest.raises(MachineModelError, match="line size"):
            CacheHierarchy(
                [SetAssociativeCache(4, 2, 64), SetAssociativeCache(4, 2, 128)]
            )

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(MachineModelError):
            CacheHierarchy([])

    def test_reset(self):
        h = self._hier()
        h.access_addresses(np.array([0, 64, 128]))
        h.reset()
        assert h.levels[0].stats.accesses == 0
        assert h.miss_rate(1) == 0.0


class TestScaledCache:
    def test_scale_reduces_sets(self):
        spec = CacheSpec(level=2, size_bytes=2 * 1024 * 1024, line_bytes=64, associativity=16, shared_by=2)
        half = scaled_cache(spec, 0.5)
        assert half.num_sets == spec.num_sets // 2
        assert half.ways == 16

    def test_minimum_one_set(self):
        spec = CacheSpec(level=2, size_bytes=64 * 16, line_bytes=64, associativity=16, shared_by=1)
        tiny = scaled_cache(spec, 0.001)
        assert tiny.num_sets == 1

    def test_rejects_bad_scale(self):
        spec = CacheSpec(level=1, size_bytes=1024, line_bytes=64, associativity=4, shared_by=1)
        with pytest.raises(MachineModelError):
            scaled_cache(spec, 0.0)
        with pytest.raises(MachineModelError):
            scaled_cache(spec, 1.5)


class TestWorkingSetNodes:
    def test_counts_whole_records(self):
        assert working_set_nodes(1024, 232) == 4

    def test_single_lattice_keeps_more_nodes_resident(self):
        from repro.machine.traces import INPLACE_RECORD_BYTES, RECORD_BYTES

        cache = 2 * 1024 * 1024
        two = working_set_nodes(cache, RECORD_BYTES)
        one = working_set_nodes(cache, INPLACE_RECORD_BYTES)
        assert one / two == pytest.approx(48 / 29, rel=0.01)

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(MachineModelError):
            working_set_nodes(0, 232)
        with pytest.raises(MachineModelError):
            working_set_nodes(1024, 0)
