"""Tests of the performance model against the paper's anchors."""

import pytest

from repro.errors import MachineModelError
from repro.machine import PerformanceModel, abu_dhabi, thog

PAPER_FLUID = (124, 64, 64)
PAPER_FIBERS = (52, 52)


@pytest.fixture(scope="module")
def abu_model():
    return PerformanceModel(abu_dhabi())


@pytest.fixture(scope="module")
def thog_model():
    return PerformanceModel(thog())


class TestSequential:
    def test_table1_ranking(self, abu_model):
        pct = abu_model.sequential_step(PAPER_FLUID, PAPER_FIBERS).percentages()
        order = list(pct)
        assert order[0] == "compute_fluid_collision"
        assert order[1] == "update_fluid_velocity"
        assert order[2] == "copy_fluid_velocity_distribution"
        assert order[3] == "stream_fluid_velocity_distribution"

    def test_table1_percentages(self, abu_model):
        pct = abu_model.sequential_step(PAPER_FLUID, PAPER_FIBERS).percentages()
        assert pct["compute_fluid_collision"] == pytest.approx(73.2, abs=1.0)
        assert pct["update_fluid_velocity"] == pytest.approx(12.6, abs=0.5)
        assert pct["copy_fluid_velocity_distribution"] == pytest.approx(5.9, abs=0.3)
        assert pct["stream_fluid_velocity_distribution"] == pytest.approx(5.4, abs=0.3)

    def test_967_second_reproduction(self, abu_model):
        total = abu_model.sequential_total_seconds(PAPER_FLUID, PAPER_FIBERS, 500)
        assert total == pytest.approx(967.0, rel=0.02)

    def test_top_four_kernels_take_97_percent(self, abu_model):
        """Paper: the top four kernels take up 97% of total time."""
        pct = abu_model.sequential_step(PAPER_FLUID, PAPER_FIBERS).percentages()
        top4 = sum(list(pct.values())[:4])
        assert top4 == pytest.approx(97.0, abs=1.0)

    def test_rejects_negative_steps(self, abu_model):
        with pytest.raises(MachineModelError):
            abu_model.sequential_total_seconds(PAPER_FLUID, PAPER_FIBERS, -1)


class TestFig5StrongScaling:
    def test_efficiency_anchors(self, abu_model):
        """Paper: 75% @ 8 cores, 56% @ 16, 38% @ 32."""
        pts = {
            p.cores: p
            for p in abu_model.strong_scaling(
                [1, 8, 16, 32], PAPER_FLUID, PAPER_FIBERS
            )
        }
        assert pts[8].efficiency == pytest.approx(0.75, abs=0.02)
        assert pts[16].efficiency == pytest.approx(0.56, abs=0.02)
        assert pts[32].efficiency == pytest.approx(0.38, abs=0.02)

    def test_good_scaling_until_8_cores(self, abu_model):
        """Paper: "the speed up is good till 8 cores"."""
        pts = abu_model.strong_scaling([1, 2, 4, 8], PAPER_FLUID, PAPER_FIBERS)
        for p in pts:
            assert p.efficiency >= 0.74

    def test_speedup_monotone(self, abu_model):
        pts = abu_model.strong_scaling(
            [1, 2, 4, 8, 16, 32], PAPER_FLUID, PAPER_FIBERS
        )
        speedups = [p.speedup for p in pts]
        assert all(b > a for a, b in zip(speedups, speedups[1:]))

    def test_rejects_cores_beyond_machine(self, abu_model):
        with pytest.raises(MachineModelError):
            abu_model.strong_scaling([64], PAPER_FLUID, PAPER_FIBERS)


class TestFig8WeakScaling:
    CORES = [1, 2, 4, 8, 16, 32, 64]

    def test_cube_beats_openmp_by_53_percent_at_64(self, thog_model):
        omp = thog_model.weak_scaling(self.CORES, 128**3, (104, 104), "openmp")
        cube = thog_model.weak_scaling(self.CORES, 128**3, (104, 104), "cube")
        ratio = omp[-1].seconds / cube[-1].seconds
        assert ratio == pytest.approx(1.53, abs=0.03)

    def test_cube_grows_slower_than_openmp(self, thog_model):
        omp = thog_model.weak_scaling(self.CORES, 128**3, (104, 104), "openmp")
        cube = thog_model.weak_scaling(self.CORES, 128**3, (104, 104), "cube")
        omp_growth = omp[-1].seconds / omp[0].seconds
        cube_growth = cube[-1].seconds / cube[0].seconds
        assert cube_growth < 0.6 * omp_growth

    def test_cube_overhead_at_one_core(self, thog_model):
        """The cube layout pays bookkeeping overhead at low core counts."""
        omp = thog_model.weak_scaling([1], 128**3, (104, 104), "openmp")
        cube = thog_model.weak_scaling([1], 128**3, (104, 104), "cube")
        assert cube[0].seconds > omp[0].seconds

    def test_crossover_below_16_cores(self, thog_model):
        """The curves cross: cube wins from ~8 cores on."""
        omp = thog_model.weak_scaling(self.CORES, 128**3, (104, 104), "openmp")
        cube = thog_model.weak_scaling(self.CORES, 128**3, (104, 104), "cube")
        wins = [o.seconds > c.seconds for o, c in zip(omp, cube)]
        assert not wins[0]  # OpenMP faster at 1 core
        assert wins[-1]  # cube faster at 64
        assert wins.index(True) <= 4  # crossover by 16 cores

    def test_both_monotone_increasing(self, thog_model):
        for solver in ("openmp", "cube"):
            pts = thog_model.weak_scaling(self.CORES, 128**3, (104, 104), solver)
            times = [p.seconds for p in pts]
            assert all(b > a for a, b in zip(times, times[1:])), solver

    def test_unknown_solver_rejected(self, thog_model):
        with pytest.raises(MachineModelError):
            thog_model.weak_scaling([1], 128**3, (104, 104), "mpi")


class TestMemoryShare:
    def test_openmp_strong_share(self, abu_model):
        share = abu_model.memory_share("openmp", weak=False)
        assert 0.3 < share < 0.5  # the fitted Abu Dhabi split

    def test_weak_shares_exist(self, thog_model):
        assert 0 < thog_model.memory_share("openmp", weak=True) < 1
        assert 0 < thog_model.memory_share("cube", weak=True) < 1
