"""Tests of the calibration constants and their documented derivations."""

import pytest

from repro.machine import calibration as cal


class TestContentionFit:
    def test_relative_time_strong_form(self):
        fit = cal.ContentionFit(wc=1.0, wm=1.0, alpha=0.0, q=1.0)
        # no contention: perfect strong scaling
        assert fit.relative_time(4) == pytest.approx(fit.relative_time(1) / 4)

    def test_relative_time_weak_form(self):
        fit = cal.ContentionFit(wc=1.0, wm=1.0, alpha=0.0, q=1.0)
        assert fit.relative_time(8, weak=True) == pytest.approx(
            fit.relative_time(1, weak=True)
        )

    def test_contention_increases_weak_time(self):
        fit = cal.CUBE_WEAK_THOG
        assert fit.relative_time(64, weak=True) > fit.relative_time(1, weak=True)

    def test_sync_term_adds_log_cost(self):
        base = cal.ContentionFit(wc=1.0, wm=0.0, alpha=0.0, q=1.0, c_sync=0.0)
        sync = cal.ContentionFit(wc=1.0, wm=0.0, alpha=0.0, q=1.0, c_sync=0.1)
        assert sync.relative_time(8) == pytest.approx(base.relative_time(8) + 0.3)

    def test_memory_share_bounds(self):
        for fit in (
            cal.OPENMP_STRONG_ABU_DHABI,
            cal.OPENMP_WEAK_THOG,
            cal.CUBE_WEAK_THOG,
        ):
            assert 0.0 < fit.memory_share < 1.0


class TestDocumentedConstants:
    def test_cube_overhead_above_one(self):
        assert cal.CUBE_SINGLE_CORE_OVERHEAD > 1.0

    def test_paper_run_constants(self):
        assert cal.PAPER_SEQUENTIAL_SECONDS == 967.0
        assert cal.PAPER_SEQUENTIAL_STEPS == 500

    def test_cube_fit_grows_slower_than_openmp(self):
        """The core Figure 8 structure lives in the fitted exponents."""
        omp64 = cal.OPENMP_WEAK_THOG.relative_time(
            64, weak=True
        ) / cal.OPENMP_WEAK_THOG.relative_time(1, weak=True)
        cube64 = cal.CUBE_WEAK_THOG.relative_time(
            64, weak=True
        ) / cal.CUBE_WEAK_THOG.relative_time(1, weak=True)
        assert omp64 == pytest.approx(3.9, abs=0.3)
        assert cube64 == pytest.approx(2.0, abs=0.15)
