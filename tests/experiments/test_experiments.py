"""Tests of the table/figure experiment drivers (reduced sizes)."""

import numpy as np
import pytest

from repro.experiments import workloads
from repro.experiments.fig5 import PAPER_FIG5_EFFICIENCY, render_fig5, run_fig5
from repro.experiments.fig8 import render_fig8, run_fig8
from repro.experiments.table1 import render_table1, run_table1
from repro.experiments.table2 import (
    PAPER_TABLE2,
    render_table2,
    run_table2,
    structural_imbalance,
)
from repro.experiments.table34 import (
    max_remote_ratio,
    render_table3,
    render_table4,
    table3_rows,
)


class TestWorkloads:
    def test_profiling_workload_matches_paper(self):
        w = workloads.PROFILING_WORKLOAD
        assert w.fluid_shape == (124, 64, 64)
        assert w.fiber_shape == (52, 52)
        assert w.num_steps == 500

    def test_weak_scaling_grid_growth(self):
        """Paper: 1 core 128^3, 2 cores 256x128x128, 4 cores 512x128x128."""
        assert workloads.weak_scaling_fluid_shape(1) == (128, 128, 128)
        assert workloads.weak_scaling_fluid_shape(2) == (256, 128, 128)
        assert workloads.weak_scaling_fluid_shape(4) == (256, 256, 128)
        assert workloads.weak_scaling_fluid_shape(8) == (256, 256, 256)
        assert workloads.weak_scaling_fluid_shape(64) == (512, 512, 512)

    def test_weak_scaling_nodes_scale_linearly(self):
        for n in (1, 2, 4, 8, 16, 32, 64):
            shape = workloads.weak_scaling_fluid_shape(n)
            assert shape[0] * shape[1] * shape[2] == n * 128**3

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            workloads.weak_scaling_fluid_shape(3)

    def test_scaled_config_divisible_for_cube(self):
        config = workloads.scaled_profiling_config(scale=4, solver="cube", cube_size=4)
        assert all(n % 4 == 0 for n in config.fluid_shape)


class TestTable1:
    def test_rows_and_meta(self):
        rows, meta = run_table1(scale=8, num_steps=2)
        assert len(rows) == 9
        assert rows[0].kernel == "compute_fluid_collision"
        assert rows[0].paper_percent == 73.2
        assert meta["model_total_seconds"] == pytest.approx(967, rel=0.02)
        measured_total = sum(r.measured_percent for r in rows)
        assert measured_total == pytest.approx(100.0, abs=0.1)

    def test_rendering(self):
        rows, meta = run_table1(scale=8, num_steps=2)
        text = render_table1(rows, meta)
        assert "Table I" in text
        assert "compute_fluid_collision" in text


class TestTable2:
    def test_structural_imbalance_zero_at_one_core(self):
        assert structural_imbalance(1) == 0.0

    def test_structural_imbalance_grows_with_uneven_split(self):
        # 124 planes over 32 threads is uneven; over 4 threads it is even
        assert structural_imbalance(32) > structural_imbalance(4)

    def test_rows_small_simulation(self):
        rows = run_table2(core_counts=[1, 2], sim_shape=(16, 8, 16), cube_size=4)
        assert len(rows) == 2
        assert 0 <= rows[0].sim_l1 <= 100
        assert 0 <= rows[0].sim_l2 <= 100
        assert rows[0].paper_l2 == PAPER_TABLE2[1][1]

    def test_rendering(self):
        rows = run_table2(core_counts=[1], sim_shape=(16, 8, 16), cube_size=4)
        assert "Table II" in render_table2(rows)


class TestFig5:
    def test_efficiency_anchors(self):
        rows = {r.cores: r for r in run_fig5()}
        for cores, eff in PAPER_FIG5_EFFICIENCY.items():
            assert rows[cores].model_efficiency == pytest.approx(eff, abs=0.02)

    def test_rendering(self):
        assert "Figure 5" in render_fig5(run_fig5())


class TestFig8:
    def test_53_percent_at_64_cores(self):
        rows = run_fig8()
        assert rows[-1].cores == 64
        assert rows[-1].openmp_over_cube == pytest.approx(1.53, abs=0.03)

    def test_growth_columns(self):
        rows = run_fig8()
        assert rows[0].openmp_growth is None
        assert rows[1].openmp_growth > 1.0
        assert rows[-1].paper_cube_growth == pytest.approx(1.18)

    def test_rendering(self):
        text = render_fig8(run_fig8())
        assert "Figure 8" in text
        assert "53%" in text
        assert "In-place s/step (est)" in text

    def test_inplace_estimate_tracks_memory_traffic(self):
        from repro.machine.workload import step_bytes

        rows = run_fig8()
        for r in rows:
            fluid = r.fluid_shape[0] * r.fluid_shape[1] * r.fluid_shape[2]
            fiber = 104 * 104
            ratio = step_bytes(fluid, fiber, "inplace") / step_bytes(
                fluid, fiber, "global"
            )
            assert r.inplace_seconds == pytest.approx(r.openmp_seconds * ratio)
            assert 0.0 < r.inplace_seconds < r.openmp_seconds


class TestTables34:
    def test_table3_values(self):
        rows = dict(table3_rows())
        assert "Opteron 6380" in rows["Processor type"]
        assert rows["Cores per NUMA node"] == "8"
        assert rows["Number of NUMA nodes"] == "8"
        assert "2 MB" in rows["L2 unified cache"]

    def test_remote_ratio_2_2(self):
        assert max_remote_ratio() == pytest.approx(2.2)

    def test_rendering(self):
        assert "Table III" in render_table3()
        text4 = render_table4()
        assert "Table IV" in text4
        assert "2.2x" in text4
