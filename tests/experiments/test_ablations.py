"""Tests of the ablation-study drivers (reduced sizes)."""

import pytest

from repro.experiments.ablations import (
    AblationResult,
    cube_size_sweep,
    delta_kernel_sweep,
    distribution_sweep,
    lock_overhead,
    render_results,
)


class TestSweeps:
    def test_cube_size_sweep_metadata(self):
        results = cube_size_sweep(cube_sizes=(2, 4), steps=1)
        by_label = {r.label: r for r in results}
        assert set(by_label) == {"k=2", "k=4"}
        assert by_label["k=4"].extra["num_cubes"] == 64.0
        assert by_label["k=2"].extra["num_cubes"] == 512.0
        # working set scales as k^3
        assert by_label["k=4"].extra["cube_working_set_kb"] == pytest.approx(
            8 * by_label["k=2"].extra["cube_working_set_kb"]
        )

    def test_distribution_sweep_counters(self):
        results = distribution_sweep(steps=1)
        assert {r.label for r in results} == {"block", "cyclic", "block_cyclic"}
        for r in results:
            assert r.extra["lock_acquisitions"] > 0
            assert 0 <= r.extra["load_imbalance_pct"] <= 100

    def test_lock_overhead_on_off(self):
        results = lock_overhead(steps=1)
        on = next(r for r in results if r.label == "locks on")
        off = next(r for r in results if r.label == "locks off")
        assert on.extra["acquisitions"] > 0
        assert off.extra["acquisitions"] == 0

    def test_delta_kernel_sweep_domains(self):
        results = delta_kernel_sweep(steps=1)
        domains = sorted(r.extra["influential_nodes"] for r in results)
        assert domains == [8.0, 27.0, 64.0]

    def test_all_sweeps_report_positive_times(self):
        for results in (cube_size_sweep(cube_sizes=(4,), steps=1),):
            assert all(r.seconds > 0 for r in results)


class TestRendering:
    def test_render_results_table(self):
        results = [
            AblationResult(label="a", seconds=0.5, extra={"x": 1.0}),
            AblationResult(label="b", seconds=0.25, extra={"x": 2.0}),
        ]
        text = render_results("My sweep", results)
        assert text.splitlines()[0] == "My sweep"
        assert "a" in text and "0.5" in text

    def test_render_handles_heterogeneous_extras(self):
        results = [
            AblationResult(label="a", seconds=0.5, extra={"x": 1.0}),
            AblationResult(label="b", seconds=0.25, extra={"y": 2.0}),
        ]
        text = render_results("Mixed", results)
        assert "x" in text and "y" in text
