"""Tests of the ``python -m repro.experiments`` reproduction report."""

import pytest

from repro.experiments.__main__ import ARTIFACTS, main


class TestCli:
    def test_list_names(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out.split()
        assert out == list(ARTIFACTS)

    def test_single_artifact(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "Table" not in out

    def test_multiple_artifacts(self, capsys):
        assert main(["table3", "table4"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out and "Table IV" in out

    def test_unknown_artifact_errors(self):
        with pytest.raises(SystemExit):
            main(["fig9"])

    def test_every_artifact_renders_nonempty(self):
        # cheap ones only; table1/table2 run real simulations and are
        # exercised by their own driver tests
        for name in ("table3", "table4", "fig5", "fig8"):
            assert len(ARTIFACTS[name]()) > 100
