"""Tests of the configuration objects."""

import pytest

from repro.config import BoundaryConfig, SimulationConfig, StructureConfig
from repro.constants import viscosity_from_tau
from repro.core.lbm.boundaries import BounceBackWall, OutflowBoundary, PeriodicBoundary
from repro.errors import ConfigurationError


class TestStructureConfig:
    def test_defaults(self):
        sc = StructureConfig()
        assert sc.kind == "flat_sheet"

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            StructureConfig(kind="balloon")

    def test_rejects_empty_structure(self):
        with pytest.raises(ConfigurationError):
            StructureConfig(num_fibers=0)

    def test_none_kind_skips_count_checks(self):
        StructureConfig(kind="none", num_fibers=0)

    def test_rejects_bad_axis(self):
        with pytest.raises(ConfigurationError):
            StructureConfig(normal_axis=5)


class TestBoundaryConfig:
    def test_axis_by_name(self):
        assert BoundaryConfig("periodic", "y", "low").resolved_axis() == 1
        assert BoundaryConfig("periodic", 2, "high").resolved_axis() == 2

    def test_unknown_axis_name(self):
        with pytest.raises(ConfigurationError):
            BoundaryConfig("periodic", "w", "low").resolved_axis()

    def test_build_types(self):
        assert isinstance(
            BoundaryConfig("periodic", 0, "low").build(), PeriodicBoundary
        )
        assert isinstance(
            BoundaryConfig("bounce_back", 0, "low").build(), BounceBackWall
        )
        assert isinstance(
            BoundaryConfig("outflow", 0, "high").build(), OutflowBoundary
        )

    def test_wall_velocity_forwarded(self):
        b = BoundaryConfig(
            "bounce_back", "x", "low", wall_velocity=(0.1, 0.0, 0.0)
        ).build()
        assert b.wall_velocity == (0.1, 0.0, 0.0)


class TestSimulationConfig:
    def test_defaults_valid(self):
        config = SimulationConfig()
        assert config.solver == "sequential"
        assert config.effective_tau == 0.8

    def test_viscosity_overrides_tau(self):
        config = SimulationConfig(viscosity=0.1)
        assert viscosity_from_tau(config.effective_tau) == pytest.approx(0.1)

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(fluid_shape=(0, 4, 4))

    def test_rejects_unknown_solver(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(solver="mpi")

    def test_cube_divisibility_enforced(self):
        with pytest.raises(ConfigurationError, match="divisible"):
            SimulationConfig(fluid_shape=(10, 8, 8), solver="cube", cube_size=4)

    def test_cube_divisibility_only_for_cube_solver(self):
        SimulationConfig(fluid_shape=(10, 8, 8), solver="sequential", cube_size=4)

    def test_rejects_duplicate_boundaries(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            SimulationConfig(
                boundaries=(
                    BoundaryConfig("periodic", "x", "low"),
                    BoundaryConfig("bounce_back", 0, "low"),
                )
            )

    def test_rejects_bad_delta(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(delta_kind="gaussian")

    def test_build_delta_kinds(self):
        from repro.core.ib.delta import CosineDelta, LinearDelta, ThreePointDelta

        assert isinstance(SimulationConfig(delta_kind="cosine").build_delta(), CosineDelta)
        assert isinstance(SimulationConfig(delta_kind="linear").build_delta(), LinearDelta)
        assert isinstance(SimulationConfig(delta_kind="3point").build_delta(), ThreePointDelta)

    def test_build_structure_kinds(self):
        none = SimulationConfig(structure=StructureConfig(kind="none"))
        assert none.build_structure() is None
        sheet = SimulationConfig(
            structure=StructureConfig(kind="flat_sheet", num_fibers=4, nodes_per_fiber=4)
        ).build_structure()
        assert sheet.sheets[0].num_fibers == 4
        plate = SimulationConfig(
            structure=StructureConfig(kind="circular_plate", num_fibers=9, nodes_per_fiber=9)
        ).build_structure()
        assert not plate.sheets[0].active.all()

    def test_build_boundaries(self):
        config = SimulationConfig(
            boundaries=(
                BoundaryConfig("bounce_back", "y", "low"),
                BoundaryConfig("bounce_back", "y", "high"),
            )
        )
        built = config.build_boundaries()
        assert len(built) == 2
        assert all(isinstance(b, BounceBackWall) for b in built)


class TestSerialization:
    def test_round_trip_through_json(self):
        import json

        config = SimulationConfig(
            fluid_shape=(12, 8, 8),
            viscosity=0.1,
            collision_operator="trt",
            delta_kind="3point",
            external_force=(1e-5, 0.0, 0.0),
            structure=StructureConfig(
                kind="flat_sheet", num_fibers=4, nodes_per_fiber=5
            ),
            boundaries=(
                BoundaryConfig("bounce_back", "y", "low"),
                BoundaryConfig(
                    "moving_wall", "y", "high", wall_velocity=(0.01, 0.0, 0.0)
                ),
            ),
        )
        data = json.loads(json.dumps(config.to_dict()))
        restored = SimulationConfig.from_dict(data)
        assert restored == config
        assert restored.effective_tau == config.effective_tau
        assert restored.to_dict() == config.to_dict()

    def test_round_trip_preserves_retry_relevant_fields(self):
        from dataclasses import replace

        config = SimulationConfig(fluid_shape=(8, 8, 8), tau=0.8)
        damped = replace(config, tau=1.0, viscosity=None)
        restored = SimulationConfig.from_dict(damped.to_dict())
        assert restored.effective_tau == 1.0
        assert restored.structure == damped.structure
